#pragma once

#include "netlist/netlist.h"
#include "radiation/environment.h"
#include "radiation/fault.h"
#include "sim/testbench.h"
#include "util/rng.h"

namespace ssresf::radiation {

/// Schedules fault events into a testbench through the VPI-style injection
/// primitives (Sec. III-D of the paper: "single-particle soft errors are
/// automatically injected ... through linkage with the VPI hardware
/// interface").
class Injector {
 public:
  explicit Injector(const netlist::Netlist& netlist) : netlist_(&netlist) {}

  /// Derives an injectable target from a cell: SEU for flip-flops, SET for
  /// combinational cells, and a uniformly random (word, bit) strike for
  /// memory macros.
  [[nodiscard]] FaultTarget target_for_cell(netlist::CellId cell,
                                            util::Rng& rng) const;

  /// Places a strike on `target` at a uniformly random time within
  /// [t0_ps, t1_ps), with the SET width drawn from the environment.
  [[nodiscard]] FaultEvent random_event(const FaultTarget& target,
                                        std::uint64_t t0_ps,
                                        std::uint64_t t1_ps,
                                        const Environment& env,
                                        util::Rng& rng) const;

  /// Registers the event's actions on the testbench timeline.
  void schedule(sim::Testbench& testbench, const FaultEvent& event) const;

 private:
  const netlist::Netlist* netlist_;
};

}  // namespace ssresf::radiation
