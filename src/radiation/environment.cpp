#include "radiation/environment.h"

#include <cmath>

namespace ssresf::radiation {

double Environment::upset_probability(double xsect_cm2,
                                      std::uint64_t window_ps) const {
  return 1.0 - std::exp(-expected_upsets(xsect_cm2, window_ps));
}

std::uint32_t Environment::set_pulse_width_ps() const {
  // ~90 ps at LET 1, ~440 ps at LET 37, ~560 ps at LET 100: comfortably
  // wider than single gate delays at high LET (propagates), close to them
  // at low LET (frequently masked) — matching the qualitative behaviour of
  // published pulse-width measurements.
  const double width = 120.0 * std::log1p(let) + 5.0;
  return static_cast<std::uint32_t>(width);
}

}  // namespace ssresf::radiation
