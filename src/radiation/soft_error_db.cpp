#include "radiation/soft_error_db.h"

#include <cmath>

#include "util/error.h"
#include "util/strings.h"
#include "util/yaml_lite.h"

namespace ssresf::radiation {

using netlist::CellKind;
using netlist::MemTech;

double LetEntry::total() const {
  double sum = 0.0;
  for (const SubCrossSection& s : sub) sum += s.xsect_cm2;
  return sum;
}

double CellEntry::xsect_at(double let) const {
  if (lets.empty()) return 0.0;
  if (let <= lets.front().let) return lets.front().total();
  if (let >= lets.back().let) return lets.back().total();
  for (std::size_t i = 1; i < lets.size(); ++i) {
    if (let <= lets[i].let) {
      // Log-linear interpolation in LET (cross-section curves are concave
      // and span decades, so interpolate the log of sigma).
      const double l0 = lets[i - 1].let;
      const double l1 = lets[i].let;
      const double x0 = lets[i - 1].total();
      const double x1 = lets[i].total();
      if (x0 <= 0.0 || x1 <= 0.0) {
        const double t = (let - l0) / (l1 - l0);
        return x0 + t * (x1 - x0);
      }
      const double t = (let - l0) / (l1 - l0);
      return std::exp(std::log(x0) + t * (std::log(x1) - std::log(x0)));
    }
  }
  return lets.back().total();
}

std::string mem_bit_entry_name(MemTech tech) {
  return "MEM_" + std::string(netlist::mem_tech_name(tech)) + "_BIT";
}

namespace {

/// Relative SET sensitivity per combinational kind (roughly proportional to
/// diffusion area / drive strength of the library cell).
double comb_area_factor(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kInv:
      return 0.6;
    case CellKind::kNand2:
    case CellKind::kNor2:
      return 0.8;
    case CellKind::kAnd2:
    case CellKind::kOr2:
      return 1.0;
    case CellKind::kNand3:
    case CellKind::kNor3:
    case CellKind::kAnd3:
    case CellKind::kOr3:
      return 1.2;
    case CellKind::kNand4:
    case CellKind::kNor4:
    case CellKind::kAnd4:
    case CellKind::kOr4:
      return 1.5;
    case CellKind::kXor2:
    case CellKind::kXnor2:
      return 1.6;
    case CellKind::kMux2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
      return 1.4;
    default:
      return 1.0;
  }
}

LetEntry set_entry(double let, double base) {
  LetEntry e;
  e.let = let;
  e.sub.push_back({"SET pulse", "always", base});
  return e;
}

LetEntry seu_entry(double let, double x10, double x01) {
  LetEntry e;
  e.let = let;
  e.sub.push_back({"SEU 1->0", "(q==1) & (qn==0)", x10});
  e.sub.push_back({"SEU 0->1", "(q==0) & (qn==1)", x01});
  return e;
}

}  // namespace

SoftErrorDatabase SoftErrorDatabase::default_database() {
  SoftErrorDatabase db;
  // Combinational cells: SET cross-sections growing with LET (saturating
  // Weibull-like shape sampled at the three table points).
  for (int k = 0; k < netlist::kNumCellKinds; ++k) {
    const auto kind = static_cast<CellKind>(k);
    if (netlist::is_sequential(kind)) continue;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
    const double f = comb_area_factor(kind);
    CellEntry entry;
    entry.cell_name = std::string(netlist::spec(kind).lib_name);
    entry.model = "SET-COMB";
    entry.lets.push_back(set_entry(1.0, 6.0e-10 * f));
    entry.lets.push_back(set_entry(37.0, 8.0e-9 * f));
    entry.lets.push_back(set_entry(100.0, 1.2e-8 * f));
    db.add(std::move(entry));
  }
  // Flip-flops: asymmetric 1->0 / 0->1 sub-cross-sections as in Fig. 3.
  for (const CellKind kind :
       {CellKind::kDff, CellKind::kDffR, CellKind::kDffE}) {
    CellEntry entry;
    entry.cell_name = std::string(netlist::spec(kind).lib_name);
    entry.model = "SEU-DFF";
    entry.lets.push_back(seu_entry(1.0, 1.2e-9, 1.6e-9));
    entry.lets.push_back(seu_entry(37.0, 1.5e-8, 2.0e-8));
    entry.lets.push_back(seu_entry(100.0, 2.2e-8, 2.9e-8));
    db.add(std::move(entry));
  }
  // Memory bits: SRAM most sensitive, DRAM less (capacitive cell, higher
  // operating charge), rad-hard SRAM orders of magnitude below.
  struct MemRow {
    MemTech tech;
    double x1, x37, x100;
  };
  for (const MemRow row : {MemRow{MemTech::kSram, 1.0e-9, 1.1e-8, 1.6e-8},
                           MemRow{MemTech::kDram, 2.5e-10, 3.5e-9, 5.5e-9},
                           MemRow{MemTech::kRadHardSram, 2.0e-13, 4.0e-12,
                                  9.0e-12}}) {
    CellEntry entry;
    entry.cell_name = mem_bit_entry_name(row.tech);
    entry.model = "SEU-MEM";
    entry.lets.push_back(seu_entry(1.0, row.x1 * 0.45, row.x1 * 0.55));
    entry.lets.push_back(seu_entry(37.0, row.x37 * 0.45, row.x37 * 0.55));
    entry.lets.push_back(seu_entry(100.0, row.x100 * 0.45, row.x100 * 0.55));
    db.add(std::move(entry));
  }
  return db;
}

void SoftErrorDatabase::add(CellEntry entry) {
  for (const CellEntry& e : entries_) {
    if (e.cell_name == entry.cell_name) {
      throw InvalidArgument("duplicate soft-error entry '" + entry.cell_name +
                            "'");
    }
  }
  entries_.push_back(std::move(entry));
}

const CellEntry* SoftErrorDatabase::find(std::string_view cell_name) const {
  for (const CellEntry& e : entries_) {
    if (e.cell_name == cell_name) return &e;
  }
  return nullptr;
}

double SoftErrorDatabase::cell_xsect(CellKind kind, double let) const {
  if (kind == CellKind::kConst0 || kind == CellKind::kConst1) return 0.0;
  if (kind == CellKind::kMemory) {
    throw InvalidArgument("memory cross-sections are per bit; use mem_bit_xsect");
  }
  const CellEntry* entry = find(netlist::spec(kind).lib_name);
  if (entry == nullptr) {
    throw InvalidArgument("no soft-error entry for cell kind '" +
                          std::string(netlist::spec(kind).lib_name) + "'");
  }
  return entry->xsect_at(let);
}

double SoftErrorDatabase::mem_bit_xsect(MemTech tech, double let) const {
  const CellEntry* entry = find(mem_bit_entry_name(tech));
  if (entry == nullptr) {
    throw InvalidArgument("no soft-error entry for memory technology");
  }
  return entry->xsect_at(let);
}

SoftErrorDatabase::NetlistXsect SoftErrorDatabase::netlist_xsect(
    const netlist::Netlist& netlist, double let) const {
  NetlistXsect out;
  for (const netlist::CellId id : netlist.all_cells()) {
    const netlist::Cell& cell = netlist.cell(id);
    if (cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1) {
      continue;
    }
    if (cell.kind == CellKind::kMemory) {
      const auto& mi = netlist.memory(cell.memory_index);
      out.seu_cm2 +=
          mem_bit_xsect(mi.tech, let) * static_cast<double>(mi.total_bits());
    } else if (netlist::is_sequential(cell.kind)) {
      out.seu_cm2 += cell_xsect(cell.kind, let);
    } else {
      out.set_cm2 += cell_xsect(cell.kind, let);
    }
  }
  return out;
}

std::string SoftErrorDatabase::to_yaml() const {
  using util::YamlNode;
  YamlNode root = YamlNode::map();
  YamlNode cells = YamlNode::list();
  for (const CellEntry& e : entries_) {
    YamlNode cell = YamlNode::map();
    cell.set("CellName", YamlNode::scalar(e.cell_name));
    cell.set("Model", YamlNode::scalar(e.model));
    YamlNode lets = YamlNode::list();
    for (const LetEntry& le : e.lets) {
      YamlNode ln = YamlNode::map();
      ln.set("LET", YamlNode::scalar(util::format("%g", le.let)));
      YamlNode subs = YamlNode::list();
      for (const SubCrossSection& s : le.sub) {
        YamlNode sn = YamlNode::map();
        sn.set("name", YamlNode::scalar(s.name));
        sn.set("cond", YamlNode::scalar(s.cond));
        sn.set("xsect", YamlNode::scalar(util::format("%.6g", s.xsect_cm2)));
        subs.push_back(std::move(sn));
      }
      ln.set("subXsect", std::move(subs));
      lets.push_back(std::move(ln));
    }
    cell.set("SoftErrors", std::move(lets));
    cells.push_back(std::move(cell));
  }
  root.set("Cells", std::move(cells));
  return root.dump();
}

SoftErrorDatabase SoftErrorDatabase::from_yaml(std::string_view text) {
  using util::YamlNode;
  const YamlNode root = YamlNode::parse(text);
  SoftErrorDatabase db;
  const YamlNode& cells = root.at("Cells");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const YamlNode& cell = cells.at(i);
    CellEntry entry;
    entry.cell_name = cell.at("CellName").as_string();
    entry.model = cell.at("Model").as_string();
    const YamlNode& lets = cell.at("SoftErrors");
    for (std::size_t j = 0; j < lets.size(); ++j) {
      const YamlNode& ln = lets.at(j);
      LetEntry le;
      le.let = ln.at("LET").as_double();
      const YamlNode& subs = ln.at("subXsect");
      for (std::size_t k = 0; k < subs.size(); ++k) {
        const YamlNode& sn = subs.at(k);
        SubCrossSection s;
        s.name = sn.at("name").as_string();
        s.cond = sn.at("cond").as_string();
        s.xsect_cm2 = sn.at("xsect").as_double();
        le.sub.push_back(std::move(s));
      }
      entry.lets.push_back(std::move(le));
    }
    db.add(std::move(entry));
  }
  return db;
}

}  // namespace ssresf::radiation
