#pragma once

#include <cstdint>

namespace ssresf::radiation {

/// Heavy-ion beam substitute: a rate-based single-event environment with a
/// particle flux and a (discrete) LET. The upset probability of a structure
/// with cross-section sigma over an observation window T follows the
/// standard Poisson model p = 1 - exp(-flux * sigma * T).
struct Environment {
  double flux = 5e8;  // particles / (cm^2 * s)
  double let = 37.0;  // MeV * cm^2 / mg

  [[nodiscard]] static double window_seconds(std::uint64_t window_ps) {
    return static_cast<double>(window_ps) * 1e-12;
  }

  /// Expected number of upsets in a structure of total cross-section
  /// `xsect_cm2` over a window of `window_ps` picoseconds.
  [[nodiscard]] double expected_upsets(double xsect_cm2,
                                       std::uint64_t window_ps) const {
    return flux * xsect_cm2 * window_seconds(window_ps);
  }

  /// Poisson probability of at least one upset.
  [[nodiscard]] double upset_probability(double xsect_cm2,
                                         std::uint64_t window_ps) const;

  /// SET transient pulse width for this LET (ps). Empirical logarithmic
  /// charge-to-width model: wider pulses for higher deposited charge.
  [[nodiscard]] std::uint32_t set_pulse_width_ps() const;
};

}  // namespace ssresf::radiation
