#pragma once

#include <cstdint>
#include <string>

#include "netlist/ids.h"

namespace ssresf::radiation {

/// The paper's two single-particle fault models (Fig. 2) plus the memory-
/// array variant of the SEU:
///  - kSeu: state flip of a sequential cell, healed at the next capture;
///  - kSet: equivalent square-wave transient forced onto a combinational
///    cell's output net for a LET-dependent width;
///  - kMemBit: flip of one stored bit in a memory macro.
enum class FaultKind : std::uint8_t { kSeu, kSet, kMemBit };

[[nodiscard]] std::string_view fault_kind_name(FaultKind kind);

/// A physical location a particle can strike.
struct FaultTarget {
  FaultKind kind = FaultKind::kSeu;
  netlist::CellId cell;     // FF (kSeu), combinational cell (kSet), or macro
  std::uint32_t word = 0;   // kMemBit only
  std::uint32_t bit = 0;    // kMemBit only

  [[nodiscard]] bool operator==(const FaultTarget&) const = default;
};

/// A concrete injection: a target plus strike time (and pulse width for
/// SET).
struct FaultEvent {
  FaultTarget target;
  std::uint64_t time_ps = 0;
  std::uint32_t set_width_ps = 0;

  [[nodiscard]] bool operator==(const FaultEvent&) const = default;
};

}  // namespace ssresf::radiation
