#include "radiation/injector.h"

#include "util/error.h"

namespace ssresf::radiation {

using netlist::CellKind;
using netlist::Logic;

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSeu:
      return "SEU";
    case FaultKind::kSet:
      return "SET";
    case FaultKind::kMemBit:
      return "MEM-SEU";
  }
  return "?";
}

FaultTarget Injector::target_for_cell(netlist::CellId cell,
                                      util::Rng& rng) const {
  const netlist::Cell& c = netlist_->cell(cell);
  FaultTarget target;
  target.cell = cell;
  if (netlist::is_flip_flop(c.kind)) {
    target.kind = FaultKind::kSeu;
  } else if (c.kind == CellKind::kMemory) {
    const auto& mi = netlist_->memory(c.memory_index);
    target.kind = FaultKind::kMemBit;
    target.word = static_cast<std::uint32_t>(rng.below(mi.words));
    target.bit = static_cast<std::uint32_t>(rng.below(mi.width));
  } else if (c.kind == CellKind::kConst0 || c.kind == CellKind::kConst1) {
    throw InvalidArgument("cannot target a tie cell");
  } else {
    target.kind = FaultKind::kSet;
  }
  return target;
}

FaultEvent Injector::random_event(const FaultTarget& target,
                                  std::uint64_t t0_ps, std::uint64_t t1_ps,
                                  const Environment& env,
                                  util::Rng& rng) const {
  if (t1_ps <= t0_ps) throw InvalidArgument("empty injection window");
  FaultEvent event;
  event.target = target;
  event.time_ps = t0_ps + rng.below(t1_ps - t0_ps);
  if (target.kind == FaultKind::kSet) {
    event.set_width_ps = env.set_pulse_width_ps();
  }
  return event;
}

void Injector::schedule(sim::Testbench& testbench,
                        const FaultEvent& event) const {
  const FaultTarget target = event.target;
  switch (target.kind) {
    case FaultKind::kSeu: {
      testbench.at(event.time_ps, [target](sim::Engine& engine) {
        const Logic flipped = netlist::logic_flip(engine.ff_state(target.cell));
        // An X state flips to X: deposit it anyway so Q/QN stay consistent.
        engine.deposit_ff(target.cell, flipped);
      });
      break;
    }
    case FaultKind::kSet: {
      const netlist::NetId victim = netlist_->cell(target.cell).outputs[0];
      testbench.at(event.time_ps, [victim](sim::Engine& engine) {
        engine.force_net(victim, netlist::logic_flip(engine.value(victim)));
      });
      testbench.at(event.time_ps + event.set_width_ps,
                   [victim](sim::Engine& engine) {
                     engine.release_net(victim);
                   });
      break;
    }
    case FaultKind::kMemBit: {
      testbench.at(event.time_ps, [target](sim::Engine& engine) {
        const std::uint64_t old = engine.read_mem_word(target.cell, target.word);
        engine.write_mem_word(target.cell, target.word,
                              old ^ (std::uint64_t{1} << target.bit));
      });
      break;
    }
  }
}

}  // namespace ssresf::radiation
