#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/netlist.h"

namespace ssresf::radiation {

/// The discrete LET points (MeV·cm²/mg) the paper's database covers.
inline constexpr double kLetValues[] = {1.0, 37.0, 100.0};

/// One conditional sub-cross-section of a cell (Fig. 3): e.g. "SEU 1->0"
/// applies when (q==1) & (qn==0) and contributes 1.5e-8 cm².
struct SubCrossSection {
  std::string name;
  std::string cond;
  double xsect_cm2 = 0.0;
};

/// Cross-sections of a cell at one LET value.
struct LetEntry {
  double let = 0.0;
  std::vector<SubCrossSection> sub;

  [[nodiscard]] double total() const;
};

/// Database record for one library cell (or memory technology).
struct CellEntry {
  std::string cell_name;  // library name ("DFFRX1") or "MEM_<TECH>_BIT"
  std::string model;      // "SEU-DFF", "SET-COMB", or "SEU-MEM"
  std::vector<LetEntry> lets;

  /// Total cross-section at `let`, with log-linear interpolation between
  /// table points and clamping outside the covered range.
  [[nodiscard]] double xsect_at(double let) const;
};

/// The SET and SEU single-particle soft-error database of the paper
/// (Sec. III-C / Fig. 3): per-cell-type, per-LET conditional
/// cross-sections, serializable to the YAML schema shown in the paper.
class SoftErrorDatabase {
 public:
  /// Built-in database covering every cell kind of the SSRESF library and
  /// all three memory technologies, at LET 1.0 / 37.0 / 100.0.
  [[nodiscard]] static SoftErrorDatabase default_database();

  [[nodiscard]] static SoftErrorDatabase from_yaml(std::string_view text);
  [[nodiscard]] std::string to_yaml() const;

  void add(CellEntry entry);
  [[nodiscard]] const CellEntry* find(std::string_view cell_name) const;

  /// Cross-section of a gate-level cell kind at `let` (SEU for sequential
  /// cells, SET for combinational). Throws if the kind is not covered.
  [[nodiscard]] double cell_xsect(netlist::CellKind kind, double let) const;

  /// Per-bit upset cross-section of a memory technology at `let`.
  [[nodiscard]] double mem_bit_xsect(netlist::MemTech tech, double let) const;

  /// Total SET and SEU cross-sections of a whole netlist at `let` (the
  /// "Xsect Info" columns of Table I). Memory macros contribute their
  /// per-bit SEU cross-section times the stored bit count.
  struct NetlistXsect {
    double set_cm2 = 0.0;
    double seu_cm2 = 0.0;
  };
  [[nodiscard]] NetlistXsect netlist_xsect(const netlist::Netlist& netlist,
                                           double let) const;

  [[nodiscard]] const std::vector<CellEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<CellEntry> entries_;
};

/// Database key for a memory technology's per-bit entry.
[[nodiscard]] std::string mem_bit_entry_name(netlist::MemTech tech);

}  // namespace ssresf::radiation
