#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace ssresf::netlist {

/// Strongly typed index. Prevents accidentally mixing net/cell/scope indices,
/// which plain integers invite.
template <typename Tag>
struct Id {
  std::uint32_t value = UINT32_MAX;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != UINT32_MAX; }
  [[nodiscard]] constexpr std::uint32_t index() const { return value; }

  friend constexpr auto operator<=>(const Id&, const Id&) = default;
};

using NetId = Id<struct NetTag>;
using CellId = Id<struct CellTag>;
using ScopeId = Id<struct ScopeTag>;

inline constexpr NetId kNoNet{};
inline constexpr CellId kNoCell{};
inline constexpr ScopeId kNoScope{};

}  // namespace ssresf::netlist

namespace std {
template <typename Tag>
struct hash<ssresf::netlist::Id<Tag>> {
  std::size_t operator()(const ssresf::netlist::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
