// AVX2 kernel for the 256-lane packed engine. Compiled WITHOUT TU-wide ISA
// flags: every function that touches intrinsics carries
// __attribute__((target("avx2"))), so the object file stays safe to link into
// binaries that must also run on pre-AVX2 hosts, and no inline/COMDAT symbol
// here can be merged with a baseline-compiled emission of the same function
// (everything with the attribute is file-local). Selection happens at runtime
// via __builtin_cpu_supports in eval_cell_w4_avx2().

#include "netlist/packed_wide.h"

#include "util/error.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SSRESF_HAVE_AVX2_KERNEL 1
#include <immintrin.h>
#endif

namespace ssresf::netlist {

#ifdef SSRESF_HAVE_AVX2_KERNEL

namespace {

#define SSRESF_AVX2 __attribute__((target("avx2")))

// One 256-lane packed word: the 4-word value plane and the 4-word unknown
// plane of a PackedVecT<4>, each in a single ymm register.
struct V256 {
  __m256i val;
  __m256i unk;
};

SSRESF_AVX2 inline V256 load_v(const PackedVecT<4>& p) {
  return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.val.data())),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p.unk.data()))};
}

SSRESF_AVX2 inline PackedVecT<4> store_v(V256 v) {
  PackedVecT<4> p;
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p.val.data()), v.val);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p.unk.data()), v.unk);
  return p;
}

SSRESF_AVX2 inline __m256i ones() { return _mm256_set1_epi64x(-1); }

// The formulas below are the packed_* operators from netlist/logic.h verbatim,
// with ~a & b spelled as _mm256_andnot_si256(a, b).

SSRESF_AVX2 inline V256 not_v(V256 a) {
  const __m256i av = _mm256_andnot_si256(a.unk, a.val);
  const __m256i nunk = _mm256_xor_si256(a.unk, ones());
  return {_mm256_andnot_si256(av, nunk), a.unk};
}

SSRESF_AVX2 inline V256 and_v(V256 a, V256 b) {
  const __m256i av = _mm256_andnot_si256(a.unk, a.val);
  const __m256i bv = _mm256_andnot_si256(b.unk, b.val);
  const __m256i known0 =
      _mm256_or_si256(_mm256_andnot_si256(_mm256_or_si256(a.val, a.unk), ones()),
                      _mm256_andnot_si256(_mm256_or_si256(b.val, b.unk), ones()));
  return {_mm256_and_si256(av, bv),
          _mm256_andnot_si256(known0, _mm256_or_si256(a.unk, b.unk))};
}

SSRESF_AVX2 inline V256 or_v(V256 a, V256 b) {
  const __m256i av = _mm256_andnot_si256(a.unk, a.val);
  const __m256i bv = _mm256_andnot_si256(b.unk, b.val);
  const __m256i known1 = _mm256_or_si256(av, bv);
  return {known1, _mm256_andnot_si256(known1, _mm256_or_si256(a.unk, b.unk))};
}

SSRESF_AVX2 inline V256 xor_v(V256 a, V256 b) {
  const __m256i av = _mm256_andnot_si256(a.unk, a.val);
  const __m256i bv = _mm256_andnot_si256(b.unk, b.val);
  const __m256i unk = _mm256_or_si256(a.unk, b.unk);
  return {_mm256_andnot_si256(unk, _mm256_xor_si256(av, bv)), unk};
}

SSRESF_AVX2 inline V256 mux_v(V256 sel, V256 a0, V256 a1) {
  const __m256i s1 = _mm256_andnot_si256(sel.unk, sel.val);
  const __m256i s0 =
      _mm256_andnot_si256(_mm256_or_si256(sel.val, sel.unk), ones());
  const __m256i a0v = _mm256_andnot_si256(a0.unk, a0.val);
  const __m256i a1v = _mm256_andnot_si256(a1.unk, a1.val);
  const __m256i agree = _mm256_andnot_si256(
      _mm256_or_si256(_mm256_or_si256(a0.unk, a1.unk), _mm256_xor_si256(a0v, a1v)),
      ones());
  const __m256i val = _mm256_or_si256(
      _mm256_or_si256(_mm256_and_si256(s0, a0v), _mm256_and_si256(s1, a1v)),
      _mm256_and_si256(_mm256_and_si256(sel.unk, agree), a0v));
  const __m256i unk = _mm256_or_si256(
      _mm256_or_si256(_mm256_and_si256(s0, a0.unk), _mm256_and_si256(s1, a1.unk)),
      _mm256_andnot_si256(agree, sel.unk));
  return {val, unk};
}

SSRESF_AVX2 PackedVecT<4> eval_w4_avx2(CellKind kind, const PackedVecT<4>* in,
                                       std::size_t n) {
  (void)n;
  switch (kind) {
    case CellKind::kConst0:
      return store_v({_mm256_setzero_si256(), _mm256_setzero_si256()});
    case CellKind::kConst1:
      return store_v({ones(), _mm256_setzero_si256()});
    case CellKind::kBuf:
      return store_v(not_v(not_v(load_v(in[0]))));
    case CellKind::kInv:
      return store_v(not_v(load_v(in[0])));
    case CellKind::kAnd2:
      return store_v(and_v(load_v(in[0]), load_v(in[1])));
    case CellKind::kAnd3:
      return store_v(and_v(and_v(load_v(in[0]), load_v(in[1])), load_v(in[2])));
    case CellKind::kAnd4:
      return store_v(and_v(and_v(load_v(in[0]), load_v(in[1])),
                           and_v(load_v(in[2]), load_v(in[3]))));
    case CellKind::kNand2:
      return store_v(not_v(and_v(load_v(in[0]), load_v(in[1]))));
    case CellKind::kNand3:
      return store_v(
          not_v(and_v(and_v(load_v(in[0]), load_v(in[1])), load_v(in[2]))));
    case CellKind::kNand4:
      return store_v(not_v(and_v(and_v(load_v(in[0]), load_v(in[1])),
                                 and_v(load_v(in[2]), load_v(in[3])))));
    case CellKind::kOr2:
      return store_v(or_v(load_v(in[0]), load_v(in[1])));
    case CellKind::kOr3:
      return store_v(or_v(or_v(load_v(in[0]), load_v(in[1])), load_v(in[2])));
    case CellKind::kOr4:
      return store_v(or_v(or_v(load_v(in[0]), load_v(in[1])),
                          or_v(load_v(in[2]), load_v(in[3]))));
    case CellKind::kNor2:
      return store_v(not_v(or_v(load_v(in[0]), load_v(in[1]))));
    case CellKind::kNor3:
      return store_v(
          not_v(or_v(or_v(load_v(in[0]), load_v(in[1])), load_v(in[2]))));
    case CellKind::kNor4:
      return store_v(not_v(or_v(or_v(load_v(in[0]), load_v(in[1])),
                                or_v(load_v(in[2]), load_v(in[3])))));
    case CellKind::kXor2:
      return store_v(xor_v(load_v(in[0]), load_v(in[1])));
    case CellKind::kXnor2:
      return store_v(not_v(xor_v(load_v(in[0]), load_v(in[1]))));
    case CellKind::kMux2:
      return store_v(mux_v(load_v(in[0]), load_v(in[1]), load_v(in[2])));
    case CellKind::kAoi21:
      return store_v(
          not_v(or_v(and_v(load_v(in[0]), load_v(in[1])), load_v(in[2]))));
    case CellKind::kOai21:
      return store_v(
          not_v(and_v(or_v(load_v(in[0]), load_v(in[1])), load_v(in[2]))));
    case CellKind::kDff:
    case CellKind::kDffR:
    case CellKind::kDffE:
    case CellKind::kMemory:
      throw InvalidArgument("eval_cell_w4 called on sequential cell");
  }
  throw InvalidArgument("eval_cell_w4: unknown cell kind");
}

#undef SSRESF_AVX2

}  // namespace

EvalCellW4Fn eval_cell_w4_avx2() {
  return __builtin_cpu_supports("avx2") ? &eval_w4_avx2 : nullptr;
}

#else  // !SSRESF_HAVE_AVX2_KERNEL

EvalCellW4Fn eval_cell_w4_avx2() { return nullptr; }

#endif

}  // namespace ssresf::netlist
