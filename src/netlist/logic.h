#pragma once

#include <cstdint>

namespace ssresf::netlist {

/// Four-valued logic per IEEE 1364: 0, 1, unknown (X), high-impedance (Z).
/// Z behaves as X when consumed by a gate input.
enum class Logic : std::uint8_t { L0 = 0, L1 = 1, X = 2, Z = 3 };

[[nodiscard]] constexpr bool is_known(Logic v) {
  return v == Logic::L0 || v == Logic::L1;
}

[[nodiscard]] constexpr Logic from_bool(bool b) {
  return b ? Logic::L1 : Logic::L0;
}

/// Converts a consumed value: Z reads as X at a gate input.
[[nodiscard]] constexpr Logic as_input(Logic v) {
  return v == Logic::Z ? Logic::X : v;
}

[[nodiscard]] constexpr Logic logic_not(Logic a) {
  a = as_input(a);
  if (a == Logic::L0) return Logic::L1;
  if (a == Logic::L1) return Logic::L0;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_and(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (a == Logic::L0 || b == Logic::L0) return Logic::L0;
  if (a == Logic::L1 && b == Logic::L1) return Logic::L1;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_or(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (a == Logic::L1 || b == Logic::L1) return Logic::L1;
  if (a == Logic::L0 && b == Logic::L0) return Logic::L0;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_xor(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (!is_known(a) || !is_known(b)) return Logic::X;
  return from_bool(a != b);
}

/// 2:1 multiplexer with the standard X-pessimism relaxation: when the select
/// is unknown but both data inputs agree on a known value, that value wins.
[[nodiscard]] constexpr Logic logic_mux(Logic sel, Logic a0, Logic a1) {
  sel = as_input(sel);
  a0 = as_input(a0);
  a1 = as_input(a1);
  if (sel == Logic::L0) return a0;
  if (sel == Logic::L1) return a1;
  if (a0 == a1 && is_known(a0)) return a0;
  return Logic::X;
}

[[nodiscard]] constexpr char to_char(Logic v) {
  switch (v) {
    case Logic::L0:
      return '0';
    case Logic::L1:
      return '1';
    case Logic::X:
      return 'x';
    case Logic::Z:
      return 'z';
  }
  return '?';
}

[[nodiscard]] constexpr Logic logic_from_char(char c) {
  switch (c) {
    case '0':
      return Logic::L0;
    case '1':
      return Logic::L1;
    case 'z':
    case 'Z':
      return Logic::Z;
    default:
      return Logic::X;
  }
}

/// Inverts known values, maps unknowns to X. Used by SEU/SET fault models.
[[nodiscard]] constexpr Logic logic_flip(Logic v) { return logic_not(v); }

// --- bit-parallel packed logic ------------------------------------------------
//
// 64 independent 4-valued lanes in two bit-planes (PROOFS/HOPE-style
// word-parallel simulation). Lane encoding, chosen so that the value plane of
// a fully known word is directly usable as a machine word:
//
//   L0 = (val 0, unk 0)    L1 = (val 1, unk 0)
//   X  = (val 0, unk 1)    Z  = (val 1, unk 1)
//
// Every packed operator below evaluates all 64 lanes branch-free and agrees
// lane-wise with its scalar logic_* counterpart (asserted exhaustively in
// tests/test_bitparallel.cpp). The bit-parallel engine simulates one golden
// slot plus up to 63 faulty runs per word with these.
struct PackedLogic {
  std::uint64_t val = 0;
  std::uint64_t unk = 0;

  [[nodiscard]] constexpr bool operator==(const PackedLogic&) const = default;
};

/// Broadcast one scalar value to all 64 lanes.
[[nodiscard]] constexpr PackedLogic packed_splat(Logic v) {
  const auto bits = static_cast<std::uint8_t>(v);
  return {bits & 1 ? ~std::uint64_t{0} : 0, bits & 2 ? ~std::uint64_t{0} : 0};
}

[[nodiscard]] constexpr Logic packed_get(PackedLogic p, int lane) {
  return static_cast<Logic>(((p.val >> lane) & 1) | (((p.unk >> lane) & 1) << 1));
}

constexpr void packed_set(PackedLogic& p, int lane, Logic v) {
  const std::uint64_t bit = std::uint64_t{1} << lane;
  const auto bits = static_cast<std::uint8_t>(v);
  p.val = (p.val & ~bit) | (bits & 1 ? bit : 0);
  p.unk = (p.unk & ~bit) | (bits & 2 ? bit : 0);
}

/// Lanes in `mask` take `b`'s value, the rest keep `a`'s.
[[nodiscard]] constexpr PackedLogic packed_select(std::uint64_t mask,
                                                  PackedLogic b, PackedLogic a) {
  return {(a.val & ~mask) | (b.val & mask), (a.unk & ~mask) | (b.unk & mask)};
}

/// Mask of lanes where the two words hold the same 4-valued symbol.
[[nodiscard]] constexpr std::uint64_t packed_eq_mask(PackedLogic a,
                                                     PackedLogic b) {
  return ~((a.val ^ b.val) | (a.unk ^ b.unk));
}

/// Mask of lanes holding a known (0/1) value.
[[nodiscard]] constexpr std::uint64_t packed_known_mask(PackedLogic a) {
  return ~a.unk;
}

/// Z reads as X at a gate input (clears the value bit of unknown lanes).
[[nodiscard]] constexpr PackedLogic packed_as_input(PackedLogic a) {
  return {a.val & ~a.unk, a.unk};
}

[[nodiscard]] constexpr PackedLogic packed_not(PackedLogic a) {
  const std::uint64_t av = a.val & ~a.unk;
  return {~av & ~a.unk, a.unk};
}

[[nodiscard]] constexpr PackedLogic packed_and(PackedLogic a, PackedLogic b) {
  const std::uint64_t av = a.val & ~a.unk;
  const std::uint64_t bv = b.val & ~b.unk;
  // A known 0 on either input dominates any unknown on the other.
  const std::uint64_t known0 = (~a.val & ~a.unk) | (~b.val & ~b.unk);
  return {av & bv, (a.unk | b.unk) & ~known0};
}

[[nodiscard]] constexpr PackedLogic packed_or(PackedLogic a, PackedLogic b) {
  const std::uint64_t av = a.val & ~a.unk;
  const std::uint64_t bv = b.val & ~b.unk;
  const std::uint64_t known1 = av | bv;
  return {known1, (a.unk | b.unk) & ~known1};
}

[[nodiscard]] constexpr PackedLogic packed_xor(PackedLogic a, PackedLogic b) {
  const std::uint64_t unk = a.unk | b.unk;
  return {((a.val & ~a.unk) ^ (b.val & ~b.unk)) & ~unk, unk};
}

/// Packed 2:1 mux with the same X-pessimism relaxation as logic_mux.
[[nodiscard]] constexpr PackedLogic packed_mux(PackedLogic sel, PackedLogic a0,
                                               PackedLogic a1) {
  const std::uint64_t s1 = sel.val & ~sel.unk;
  const std::uint64_t s0 = ~sel.val & ~sel.unk;
  const std::uint64_t a0v = a0.val & ~a0.unk;
  const std::uint64_t a1v = a1.val & ~a1.unk;
  const std::uint64_t agree = ~a0.unk & ~a1.unk & ~(a0v ^ a1v);
  return {(s0 & a0v) | (s1 & a1v) | (sel.unk & agree & a0v),
          (s0 & a0.unk) | (s1 & a1.unk) | (sel.unk & ~agree)};
}

/// Packed SEU/SET flip: inverts known lanes, maps unknown lanes to X.
[[nodiscard]] constexpr PackedLogic packed_flip(PackedLogic a) {
  return packed_not(a);
}

}  // namespace ssresf::netlist
