#pragma once

#include <cstdint>

namespace ssresf::netlist {

/// Four-valued logic per IEEE 1364: 0, 1, unknown (X), high-impedance (Z).
/// Z behaves as X when consumed by a gate input.
enum class Logic : std::uint8_t { L0 = 0, L1 = 1, X = 2, Z = 3 };

[[nodiscard]] constexpr bool is_known(Logic v) {
  return v == Logic::L0 || v == Logic::L1;
}

[[nodiscard]] constexpr Logic from_bool(bool b) {
  return b ? Logic::L1 : Logic::L0;
}

/// Converts a consumed value: Z reads as X at a gate input.
[[nodiscard]] constexpr Logic as_input(Logic v) {
  return v == Logic::Z ? Logic::X : v;
}

[[nodiscard]] constexpr Logic logic_not(Logic a) {
  a = as_input(a);
  if (a == Logic::L0) return Logic::L1;
  if (a == Logic::L1) return Logic::L0;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_and(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (a == Logic::L0 || b == Logic::L0) return Logic::L0;
  if (a == Logic::L1 && b == Logic::L1) return Logic::L1;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_or(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (a == Logic::L1 || b == Logic::L1) return Logic::L1;
  if (a == Logic::L0 && b == Logic::L0) return Logic::L0;
  return Logic::X;
}

[[nodiscard]] constexpr Logic logic_xor(Logic a, Logic b) {
  a = as_input(a);
  b = as_input(b);
  if (!is_known(a) || !is_known(b)) return Logic::X;
  return from_bool(a != b);
}

/// 2:1 multiplexer with the standard X-pessimism relaxation: when the select
/// is unknown but both data inputs agree on a known value, that value wins.
[[nodiscard]] constexpr Logic logic_mux(Logic sel, Logic a0, Logic a1) {
  sel = as_input(sel);
  a0 = as_input(a0);
  a1 = as_input(a1);
  if (sel == Logic::L0) return a0;
  if (sel == Logic::L1) return a1;
  if (a0 == a1 && is_known(a0)) return a0;
  return Logic::X;
}

[[nodiscard]] constexpr char to_char(Logic v) {
  switch (v) {
    case Logic::L0:
      return '0';
    case Logic::L1:
      return '1';
    case Logic::X:
      return 'x';
    case Logic::Z:
      return 'z';
  }
  return '?';
}

[[nodiscard]] constexpr Logic logic_from_char(char c) {
  switch (c) {
    case '0':
      return Logic::L0;
    case '1':
      return Logic::L1;
    case 'z':
    case 'Z':
      return Logic::Z;
    default:
      return Logic::X;
  }
}

/// Inverts known values, maps unknowns to X. Used by SEU/SET fault models.
[[nodiscard]] constexpr Logic logic_flip(Logic v) { return logic_not(v); }

}  // namespace ssresf::netlist
