#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell_library.h"
#include "netlist/ids.h"

namespace ssresf::netlist {

/// Functional grouping of a module, used by the Fig. 7 experiment (Memory /
/// Bus / CPU-logic proportions) and as a node feature for the SVM.
enum class ModuleClass : std::uint8_t {
  kOther = 0,
  kCpu = 1,
  kMemory = 2,
  kBus = 3,
  kPeripheral = 4,
};

/// Number of ModuleClass values — the size of every per-class aggregation
/// array (campaign stats, Fig. 7 series, pipeline class percentages).
inline constexpr std::size_t kModuleClassCount = 5;

[[nodiscard]] std::string_view module_class_name(ModuleClass c);

/// A node in the design hierarchy. Cells reference their scope; the chain of
/// parents yields the hierarchical instance path used by the clustering
/// distance (Eq. 1) and by the layer-depth feature.
struct Scope {
  std::string name;
  ScopeId parent;          // kNoScope for the root
  std::uint16_t depth = 0; // root is depth 0
  ModuleClass mclass = ModuleClass::kOther;
};

/// Memory technology of a macro; functionally identical, but each technology
/// carries different per-bit upset cross-sections in the soft-error database
/// (SRAM > DRAM >> rad-hard SRAM, per the paper's Table I discussion).
enum class MemTech : std::uint8_t {
  kSram = 0,
  kDram = 1,
  kRadHardSram = 2,
};

[[nodiscard]] std::string_view mem_tech_name(MemTech tech);

/// Parameters of a behavioural memory macro instance (1R1W).
/// Port convention: inputs = [CLK, EN, WE, RADDR(addr_bits),
/// WADDR(addr_bits), WDATA(width)], outputs = [RDATA(width)].
/// Read is asynchronous on RADDR; write happens on posedge CLK at WADDR.
struct MemoryInfo {
  std::uint32_t words = 0;
  std::uint8_t width = 0;  // bits per word, <= 64
  std::uint8_t addr_bits = 0;
  MemTech tech = MemTech::kSram;
  std::vector<std::uint64_t> init;  // initial contents; empty means zeros

  [[nodiscard]] std::uint64_t total_bits() const {
    return static_cast<std::uint64_t>(words) * width;
  }
};

struct Cell {
  std::string name;  // leaf instance name, unique within its scope
  CellKind kind = CellKind::kBuf;
  ScopeId scope;
  std::vector<NetId> inputs;
  std::vector<NetId> outputs;
  std::int32_t memory_index = -1;  // into Netlist::memories() for kMemory
};

struct Net {
  std::string name;  // may be empty; generated on demand
  CellId driver;     // kNoCell when primary input
  std::uint16_t driver_port = 0;
  bool is_primary_input = false;
};

/// One fanout destination of a net.
struct Fanout {
  CellId cell;
  std::uint16_t input_index;
};

/// A flat gate-level netlist with hierarchical instance paths.
///
/// The netlist is mutated through add_* during construction (by
/// NetlistBuilder or the Verilog parser) and becomes usable for simulation
/// after finalize(), which validates structural invariants and builds the
/// fanout index. Mutating after finalize() requires calling finalize() again.
class Netlist {
 public:
  Netlist();

  // --- construction --------------------------------------------------------
  ScopeId add_scope(std::string name, ScopeId parent,
                    ModuleClass mclass = ModuleClass::kOther);
  NetId add_net(std::string name = "");
  CellId add_cell(CellKind kind, ScopeId scope, std::string name,
                  std::vector<NetId> inputs, std::vector<NetId> outputs,
                  std::int32_t memory_index = -1);
  std::int32_t add_memory(MemoryInfo info);

  void mark_primary_input(NetId net, std::string name);
  void mark_primary_output(NetId net, std::string name);
  /// Renames the design (and its root scope, which heads every instance
  /// path).
  void set_name(std::string name) {
    name_ = name;
    scopes_[0].name = std::move(name);
  }
  void set_scope_class(ScopeId id, ModuleClass mclass);

  /// Validates invariants (all nets driven or primary inputs, arities match
  /// cell specs, memory parameters sane) and builds the fanout index and
  /// name lookup tables. Throws Error on violation.
  void finalize();
  [[nodiscard]] bool finalized() const { return finalized_; }

  // --- access ---------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_nets() const { return nets_.size(); }
  [[nodiscard]] std::size_t num_cells() const { return cells_.size(); }
  [[nodiscard]] std::size_t num_scopes() const { return scopes_.size(); }
  [[nodiscard]] std::size_t num_memories() const { return memories_.size(); }

  [[nodiscard]] const Net& net(NetId id) const { return nets_[id.index()]; }
  [[nodiscard]] const Cell& cell(CellId id) const { return cells_[id.index()]; }
  [[nodiscard]] const Scope& scope(ScopeId id) const { return scopes_[id.index()]; }
  [[nodiscard]] const MemoryInfo& memory(std::int32_t index) const;
  [[nodiscard]] MemoryInfo& mutable_memory(std::int32_t index);

  [[nodiscard]] ScopeId root_scope() const { return ScopeId{0}; }

  [[nodiscard]] std::span<const Fanout> fanout(NetId id) const;

  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>&
  primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<std::pair<NetId, std::string>>&
  primary_outputs() const {
    return primary_outputs_;
  }

  /// All cell ids, in creation order.
  [[nodiscard]] std::vector<CellId> all_cells() const;

  /// Hierarchical instance path, e.g. "soc/cpu0/alu/add_7".
  [[nodiscard]] std::string cell_path(CellId id) const;
  [[nodiscard]] std::string scope_path(ScopeId id) const;

  /// Ancestor of `scope` at hierarchy depth `depth` (<= scope depth);
  /// returns the scope itself when depth equals its own depth.
  [[nodiscard]] ScopeId ancestor_at_depth(ScopeId scope,
                                          std::uint16_t depth) const;

  /// Effective module class: the cell's scope class, or the nearest ancestor
  /// with a non-kOther class.
  [[nodiscard]] ModuleClass effective_class(ScopeId scope) const;
  [[nodiscard]] ModuleClass cell_class(CellId id) const {
    return effective_class(cell(id).scope);
  }

  /// Net name; generates "n<id>" for anonymous nets.
  [[nodiscard]] std::string net_name(NetId id) const;

  /// Lookup by name (available after finalize()); kNoNet / kNoCell if absent.
  [[nodiscard]] NetId find_net(std::string_view name) const;
  [[nodiscard]] CellId find_cell(std::string_view path) const;

  [[nodiscard]] std::size_t num_sequential_cells() const;
  [[nodiscard]] std::size_t num_combinational_cells() const;

  /// Maximum scope depth in the design (the paper's "layer depth" LN).
  [[nodiscard]] std::uint16_t max_depth() const;

 private:
  void check_net(NetId id) const;

  std::string name_ = "top";
  std::vector<Scope> scopes_;
  std::vector<Net> nets_;
  std::vector<Cell> cells_;
  std::vector<MemoryInfo> memories_;
  std::vector<std::pair<NetId, std::string>> primary_inputs_;
  std::vector<std::pair<NetId, std::string>> primary_outputs_;

  // CSR fanout index, built by finalize().
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<Fanout> fanout_entries_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<std::string, CellId> cell_by_path_;
  bool finalized_ = false;
};

}  // namespace ssresf::netlist
