#include "netlist/packed_wide.h"

#include <cstdlib>

#include "util/error.h"

namespace ssresf::netlist {

template <int W>
PackedVecT<W> eval_cell_wide(CellKind kind, std::span<const PackedVecT<W>> in) {
  switch (kind) {
    case CellKind::kConst0:
      return wide_splat<W>(Logic::L0);
    case CellKind::kConst1:
      return wide_splat<W>(Logic::L1);
    case CellKind::kBuf:
      return wide_not(wide_not(in[0]));
    case CellKind::kInv:
      return wide_not(in[0]);
    case CellKind::kAnd2:
      return wide_and(in[0], in[1]);
    case CellKind::kAnd3:
      return wide_and(wide_and(in[0], in[1]), in[2]);
    case CellKind::kAnd4:
      return wide_and(wide_and(in[0], in[1]), wide_and(in[2], in[3]));
    case CellKind::kNand2:
      return wide_not(wide_and(in[0], in[1]));
    case CellKind::kNand3:
      return wide_not(wide_and(wide_and(in[0], in[1]), in[2]));
    case CellKind::kNand4:
      return wide_not(wide_and(wide_and(in[0], in[1]), wide_and(in[2], in[3])));
    case CellKind::kOr2:
      return wide_or(in[0], in[1]);
    case CellKind::kOr3:
      return wide_or(wide_or(in[0], in[1]), in[2]);
    case CellKind::kOr4:
      return wide_or(wide_or(in[0], in[1]), wide_or(in[2], in[3]));
    case CellKind::kNor2:
      return wide_not(wide_or(in[0], in[1]));
    case CellKind::kNor3:
      return wide_not(wide_or(wide_or(in[0], in[1]), in[2]));
    case CellKind::kNor4:
      return wide_not(wide_or(wide_or(in[0], in[1]), wide_or(in[2], in[3])));
    case CellKind::kXor2:
      return wide_xor(in[0], in[1]);
    case CellKind::kXnor2:
      return wide_not(wide_xor(in[0], in[1]));
    case CellKind::kMux2:
      return wide_mux(in[0], in[1], in[2]);
    case CellKind::kAoi21:
      return wide_not(wide_or(wide_and(in[0], in[1]), in[2]));
    case CellKind::kOai21:
      return wide_not(wide_and(wide_or(in[0], in[1]), in[2]));
    case CellKind::kDff:
    case CellKind::kDffR:
    case CellKind::kDffE:
    case CellKind::kMemory:
      throw InvalidArgument("eval_cell_wide called on sequential cell");
  }
  throw InvalidArgument("eval_cell_wide: unknown cell kind");
}

template PackedVecT<4> eval_cell_wide<4>(CellKind,
                                         std::span<const PackedVecT<4>>);

namespace {

PackedVecT<4> eval_w4_generic(CellKind kind, const PackedVecT<4>* in,
                              std::size_t n) {
  return eval_cell_wide<4>(kind, std::span<const PackedVecT<4>>(in, n));
}

}  // namespace

EvalCellW4Fn eval_cell_w4_generic() { return &eval_w4_generic; }

EvalCellW4Fn eval_cell_w4_dispatch() {
  static const EvalCellW4Fn chosen = [] {
    if (std::getenv("SSRESF_NO_AVX2") != nullptr) return eval_cell_w4_generic();
    if (const EvalCellW4Fn avx2 = eval_cell_w4_avx2(); avx2 != nullptr) {
      return avx2;
    }
    return eval_cell_w4_generic();
  }();
  return chosen;
}

}  // namespace ssresf::netlist
