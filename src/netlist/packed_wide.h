#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>

#include "netlist/cell_library.h"
#include "netlist/logic.h"

namespace ssresf::netlist {

// --- SIMD-wide packed logic ---------------------------------------------------
//
// Generalizes PackedLogic (64 lanes in two 64-bit planes) to W machine words
// per plane, i.e. 64*W independent 4-valued lanes. W=1 is the classic
// bit-parallel word; W=4 is the 256-lane AVX2-friendly shape (one golden lane
// plus up to 255 faulty runs per batch). Every wide operator is defined
// word-wise in terms of the exhaustively-tested PackedLogic operator, so
// lane-wise agreement with scalar logic_* is inherited, not re-proven.
//
// The layout is struct-of-planes: all W value words, then all W unknown
// words. A PackedVecT<4> is therefore two contiguous 32-byte blocks, which is
// exactly what one AVX2 register pair wants (see packed_wide_avx2.cpp).

/// Mask over 64*W lanes, one bit per lane. Word k covers lanes [64k, 64k+64).
template <int W>
struct LaneMaskT {
  static_assert(W >= 1);
  std::array<std::uint64_t, W> w{};

  [[nodiscard]] constexpr bool operator==(const LaneMaskT&) const = default;

  [[nodiscard]] constexpr bool any() const {
    std::uint64_t acc = 0;
    for (int k = 0; k < W; ++k) acc |= w[k];
    return acc != 0;
  }
  [[nodiscard]] constexpr bool none() const { return !any(); }

  [[nodiscard]] constexpr int count() const {
    int n = 0;
    for (int k = 0; k < W; ++k) n += std::popcount(w[k]);
    return n;
  }

  [[nodiscard]] constexpr bool test(int lane) const {
    return (w[lane >> 6] >> (lane & 63)) & 1;
  }
  constexpr void set(int lane) { w[lane >> 6] |= std::uint64_t{1} << (lane & 63); }
  constexpr void reset(int lane) {
    w[lane >> 6] &= ~(std::uint64_t{1} << (lane & 63));
  }

  /// Index of the lowest set lane; 64*W when empty.
  [[nodiscard]] constexpr int lowest() const {
    for (int k = 0; k < W; ++k) {
      if (w[k] != 0) return k * 64 + std::countr_zero(w[k]);
    }
    return W * 64;
  }

  constexpr LaneMaskT& operator&=(const LaneMaskT& o) {
    for (int k = 0; k < W; ++k) w[k] &= o.w[k];
    return *this;
  }
  constexpr LaneMaskT& operator|=(const LaneMaskT& o) {
    for (int k = 0; k < W; ++k) w[k] |= o.w[k];
    return *this;
  }
  [[nodiscard]] friend constexpr LaneMaskT operator&(LaneMaskT a,
                                                     const LaneMaskT& b) {
    return a &= b;
  }
  [[nodiscard]] friend constexpr LaneMaskT operator|(LaneMaskT a,
                                                     const LaneMaskT& b) {
    return a |= b;
  }
  [[nodiscard]] friend constexpr LaneMaskT operator~(LaneMaskT a) {
    for (int k = 0; k < W; ++k) a.w[k] = ~a.w[k];
    return a;
  }

  /// Lanes [0, n) set, the rest clear.
  [[nodiscard]] static constexpr LaneMaskT first_lanes(int n) {
    LaneMaskT m;
    for (int k = 0; k < W; ++k) {
      const int lo = k * 64;
      if (n >= lo + 64) {
        m.w[k] = ~std::uint64_t{0};
      } else if (n > lo) {
        m.w[k] = (std::uint64_t{1} << (n - lo)) - 1;
      }
    }
    return m;
  }
};

/// Invoke fn(lane) for every set lane, in ascending lane order.
template <int W, typename Fn>
constexpr void for_each_set_lane(const LaneMaskT<W>& m, Fn&& fn) {
  for (int k = 0; k < W; ++k) {
    std::uint64_t rest = m.w[k];
    while (rest != 0) {
      fn(k * 64 + std::countr_zero(rest));
      rest &= rest - 1;
    }
  }
}

/// 64*W four-valued lanes in 2*W bit-plane words (see PackedLogic encoding).
template <int W>
struct PackedVecT {
  static_assert(W >= 1);
  static constexpr int kLanes = 64 * W;

  std::array<std::uint64_t, W> val{};
  std::array<std::uint64_t, W> unk{};

  [[nodiscard]] constexpr bool operator==(const PackedVecT&) const = default;

  [[nodiscard]] constexpr PackedLogic word(int k) const {
    return {val[k], unk[k]};
  }
  constexpr void set_word(int k, PackedLogic p) {
    val[k] = p.val;
    unk[k] = p.unk;
  }
};

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_splat(Logic v) {
  const PackedLogic p = packed_splat(v);
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, p);
  return o;
}

template <int W>
[[nodiscard]] constexpr Logic wide_get(const PackedVecT<W>& p, int lane) {
  return packed_get(p.word(lane >> 6), lane & 63);
}

template <int W>
constexpr void wide_set(PackedVecT<W>& p, int lane, Logic v) {
  PackedLogic word = p.word(lane >> 6);
  packed_set(word, lane & 63, v);
  p.set_word(lane >> 6, word);
}

/// Lanes in `mask` take `b`'s value, the rest keep `a`'s.
template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_select(const LaneMaskT<W>& mask,
                                                  const PackedVecT<W>& b,
                                                  const PackedVecT<W>& a) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) {
    o.set_word(k, packed_select(mask.w[k], b.word(k), a.word(k)));
  }
  return o;
}

/// Mask of lanes where the two vectors hold the same 4-valued symbol.
template <int W>
[[nodiscard]] constexpr LaneMaskT<W> wide_eq_mask(const PackedVecT<W>& a,
                                                  const PackedVecT<W>& b) {
  LaneMaskT<W> m;
  for (int k = 0; k < W; ++k) m.w[k] = packed_eq_mask(a.word(k), b.word(k));
  return m;
}

/// Z reads as X at a gate input (clears the value bit of unknown lanes).
template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_as_input(const PackedVecT<W>& a) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, packed_as_input(a.word(k)));
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_not(const PackedVecT<W>& a) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, packed_not(a.word(k)));
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_and(const PackedVecT<W>& a,
                                               const PackedVecT<W>& b) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, packed_and(a.word(k), b.word(k)));
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_or(const PackedVecT<W>& a,
                                              const PackedVecT<W>& b) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, packed_or(a.word(k), b.word(k)));
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_xor(const PackedVecT<W>& a,
                                               const PackedVecT<W>& b) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) o.set_word(k, packed_xor(a.word(k), b.word(k)));
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_mux(const PackedVecT<W>& sel,
                                               const PackedVecT<W>& a0,
                                               const PackedVecT<W>& a1) {
  PackedVecT<W> o;
  for (int k = 0; k < W; ++k) {
    o.set_word(k, packed_mux(sel.word(k), a0.word(k), a1.word(k)));
  }
  return o;
}

template <int W>
[[nodiscard]] constexpr PackedVecT<W> wide_flip(const PackedVecT<W>& a) {
  return wide_not(a);
}

/// Wide variant of eval_cell_packed: evaluates all 64*W lanes at once.
/// Lane-wise identical to eval_cell (asserted in tests/test_bitparallel.cpp).
template <int W>
[[nodiscard]] PackedVecT<W> eval_cell_wide(CellKind kind,
                                           std::span<const PackedVecT<W>> in);

// --- runtime-dispatched W=4 kernel -------------------------------------------
//
// The 256-lane engine evaluates every combinational cell through one of these
// kernels. The generic kernel is plain C++ (the W-word loops above, which the
// compiler auto-vectorizes as it sees fit); the AVX2 kernel in
// packed_wide_avx2.cpp handles each 4-word plane as one __m256i and is
// compiled with target("avx2") function attributes only — no TU-wide ISA
// flags, so no baseline code can be contaminated by AVX2 emission.

using EvalCellW4Fn = PackedVecT<4> (*)(CellKind kind, const PackedVecT<4>* in,
                                       std::size_t n);

/// Portable kernel; always available.
[[nodiscard]] EvalCellW4Fn eval_cell_w4_generic();

/// AVX2 kernel, or nullptr when the CPU (or target) lacks AVX2.
[[nodiscard]] EvalCellW4Fn eval_cell_w4_avx2();

/// The kernel the wide engine should use: AVX2 when the CPU supports it and
/// SSRESF_NO_AVX2 is not set in the environment, else the generic kernel.
/// Resolved once per process.
[[nodiscard]] EvalCellW4Fn eval_cell_w4_dispatch();

}  // namespace ssresf::netlist
