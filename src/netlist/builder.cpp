#include "netlist/builder.h"

#include "util/error.h"

namespace ssresf::netlist {

NetlistBuilder::NetlistBuilder(std::string top_name) {
  netlist_.set_name(std::move(top_name));
  scope_stack_.push_back(netlist_.root_scope());
}

NetlistBuilder::ScopeGuard NetlistBuilder::scope(std::string name,
                                                 ModuleClass mclass) {
  const ScopeId id =
      netlist_.add_scope(std::move(name), scope_stack_.back(), mclass);
  scope_stack_.push_back(id);
  return ScopeGuard(this);
}

void NetlistBuilder::pop_scope() {
  if (scope_stack_.size() <= 1) {
    throw InternalError("scope stack underflow");
  }
  scope_stack_.pop_back();
}

NetId NetlistBuilder::input(std::string name) {
  const NetId net = netlist_.add_net(name);
  netlist_.mark_primary_input(net, std::move(name));
  return net;
}

std::vector<NetId> NetlistBuilder::input_bus(const std::string& name,
                                             int width) {
  if (width <= 0) throw InvalidArgument("input_bus width must be positive");
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(input(name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void NetlistBuilder::output(NetId net, std::string name) {
  netlist_.mark_primary_output(net, std::move(name));
}

void NetlistBuilder::output_bus(std::span<const NetId> bus,
                                const std::string& name) {
  for (std::size_t i = 0; i < bus.size(); ++i) {
    netlist_.mark_primary_output(bus[i], name + "[" + std::to_string(i) + "]");
  }
}

NetId NetlistBuilder::wire(std::string name) {
  return netlist_.add_net(std::move(name));
}

std::vector<NetId> NetlistBuilder::wire_bus(int width, const std::string& name) {
  if (width <= 0) throw InvalidArgument("wire_bus width must be positive");
  std::vector<NetId> bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    bus.push_back(wire(name.empty() ? std::string()
                                    : name + "[" + std::to_string(i) + "]"));
  }
  return bus;
}

void NetlistBuilder::drive(NetId dst, NetId src) {
  netlist_.add_cell(CellKind::kBuf, scope_stack_.back(), unique_name("drv"),
                    {src}, {dst});
}

void NetlistBuilder::drive_bus(std::span<const NetId> dst,
                               std::span<const NetId> src) {
  if (dst.size() != src.size()) {
    throw InvalidArgument("drive_bus width mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) drive(dst[i], src[i]);
}

NetId NetlistBuilder::zero() {
  if (!zero_net_.valid()) {
    zero_net_ = netlist_.add_net("const0");
    netlist_.add_cell(CellKind::kConst0, netlist_.root_scope(), "tie_lo", {},
                      {zero_net_});
  }
  return zero_net_;
}

NetId NetlistBuilder::one() {
  if (!one_net_.valid()) {
    one_net_ = netlist_.add_net("const1");
    netlist_.add_cell(CellKind::kConst1, netlist_.root_scope(), "tie_hi", {},
                      {one_net_});
  }
  return one_net_;
}

NetId NetlistBuilder::gate(CellKind kind, std::vector<NetId> inputs,
                           std::string name) {
  if (is_sequential(kind)) {
    throw InvalidArgument("gate() cannot create sequential cells");
  }
  if (name.empty()) name = unique_name(spec(kind).lib_name);
  const NetId out = netlist_.add_net();
  netlist_.add_cell(kind, scope_stack_.back(), std::move(name),
                    std::move(inputs), {out});
  return out;
}

NetId NetlistBuilder::and_reduce(std::span<const NetId> nets) {
  if (nets.empty()) throw InvalidArgument("and_reduce of empty span");
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    // Prefer 4- and 3-input gates to keep tree depth low, like a mapper.
    while (level.size() - i >= 4) {
      next.push_back(gate(CellKind::kAnd4,
                          {level[i], level[i + 1], level[i + 2], level[i + 3]}));
      i += 4;
    }
    if (level.size() - i == 3) {
      next.push_back(gate(CellKind::kAnd3, {level[i], level[i + 1], level[i + 2]}));
      i += 3;
    } else if (level.size() - i == 2) {
      next.push_back(and2(level[i], level[i + 1]));
      i += 2;
    } else if (level.size() - i == 1) {
      next.push_back(level[i]);
      i += 1;
    }
    level = std::move(next);
  }
  return level[0];
}

NetId NetlistBuilder::or_reduce(std::span<const NetId> nets) {
  if (nets.empty()) throw InvalidArgument("or_reduce of empty span");
  std::vector<NetId> level(nets.begin(), nets.end());
  while (level.size() > 1) {
    std::vector<NetId> next;
    std::size_t i = 0;
    while (level.size() - i >= 4) {
      next.push_back(gate(CellKind::kOr4,
                          {level[i], level[i + 1], level[i + 2], level[i + 3]}));
      i += 4;
    }
    if (level.size() - i == 3) {
      next.push_back(gate(CellKind::kOr3, {level[i], level[i + 1], level[i + 2]}));
      i += 3;
    } else if (level.size() - i == 2) {
      next.push_back(or2(level[i], level[i + 1]));
      i += 2;
    } else if (level.size() - i == 1) {
      next.push_back(level[i]);
      i += 1;
    }
    level = std::move(next);
  }
  return level[0];
}

NetlistBuilder::FlopOut NetlistBuilder::dff(NetId d, NetId clk,
                                            std::string name) {
  if (name.empty()) name = unique_name("dff");
  const NetId q = netlist_.add_net();
  const NetId qn = netlist_.add_net();
  const CellId cell = netlist_.add_cell(CellKind::kDff, scope_stack_.back(),
                                        std::move(name), {d, clk}, {q, qn});
  return {q, qn, cell};
}

NetlistBuilder::FlopOut NetlistBuilder::dffr(NetId d, NetId clk, NetId rstn,
                                             std::string name) {
  if (name.empty()) name = unique_name("dffr");
  const NetId q = netlist_.add_net();
  const NetId qn = netlist_.add_net();
  const CellId cell =
      netlist_.add_cell(CellKind::kDffR, scope_stack_.back(), std::move(name),
                        {d, clk, rstn}, {q, qn});
  return {q, qn, cell};
}

NetlistBuilder::FlopOut NetlistBuilder::dffe(NetId d, NetId clk, NetId rstn,
                                             NetId en, std::string name) {
  if (name.empty()) name = unique_name("dffe");
  const NetId q = netlist_.add_net();
  const NetId qn = netlist_.add_net();
  const CellId cell =
      netlist_.add_cell(CellKind::kDffE, scope_stack_.back(), std::move(name),
                        {d, clk, rstn, en}, {q, qn});
  return {q, qn, cell};
}

std::vector<NetId> NetlistBuilder::register_bus(std::span<const NetId> d,
                                                NetId clk, NetId rstn,
                                                const std::string& name) {
  std::vector<NetId> q;
  q.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q.push_back(dffr(d[i], clk, rstn, name + "_" + std::to_string(i)).q);
  }
  return q;
}

std::vector<NetId> NetlistBuilder::register_bus_en(std::span<const NetId> d,
                                                   NetId clk, NetId rstn,
                                                   NetId en,
                                                   const std::string& name) {
  std::vector<NetId> q;
  q.reserve(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    q.push_back(dffe(d[i], clk, rstn, en, name + "_" + std::to_string(i)).q);
  }
  return q;
}

NetlistBuilder::MemOut NetlistBuilder::memory(MemoryInfo info, NetId clk,
                                              NetId en, NetId we,
                                              std::span<const NetId> raddr,
                                              std::span<const NetId> waddr,
                                              std::span<const NetId> wdata,
                                              std::string name) {
  const std::int32_t mem_index = netlist_.add_memory(std::move(info));
  const MemoryInfo& mi = netlist_.memory(mem_index);
  if (raddr.size() != mi.addr_bits || waddr.size() != mi.addr_bits) {
    throw InvalidArgument("memory addr bus width mismatch");
  }
  if (wdata.size() != mi.width) {
    throw InvalidArgument("memory wdata bus width mismatch");
  }
  std::vector<NetId> inputs;
  inputs.reserve(3 + raddr.size() + waddr.size() + wdata.size());
  inputs.push_back(clk);
  inputs.push_back(en);
  inputs.push_back(we);
  inputs.insert(inputs.end(), raddr.begin(), raddr.end());
  inputs.insert(inputs.end(), waddr.begin(), waddr.end());
  inputs.insert(inputs.end(), wdata.begin(), wdata.end());
  std::vector<NetId> rdata;
  rdata.reserve(mi.width);
  for (int i = 0; i < mi.width; ++i) rdata.push_back(netlist_.add_net());
  if (name.empty()) name = unique_name("mem");
  const CellId cell =
      netlist_.add_cell(CellKind::kMemory, scope_stack_.back(),
                        std::move(name), std::move(inputs), rdata, mem_index);
  return {cell, std::move(rdata)};
}

Netlist NetlistBuilder::finish() {
  if (finished_) throw InternalError("NetlistBuilder::finish called twice");
  finished_ = true;
  netlist_.finalize();
  return std::move(netlist_);
}

std::string NetlistBuilder::unique_name(std::string_view base) {
  std::string name(base);
  name += '_';
  name += std::to_string(name_counter_++);
  return name;
}

}  // namespace ssresf::netlist
