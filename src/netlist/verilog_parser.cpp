#include <cctype>
#include <cstdlib>
#include <map>
#include <unordered_map>

#include "netlist/verilog.h"
#include "util/error.h"
#include "util/strings.h"

namespace ssresf::netlist {

namespace {

struct Token {
  enum class Kind { kIdent, kPunct, kNumber, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

/// Tokenizer for the structural subset. Captures SSRESF annotation comments
/// separately; all other comments are skipped.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    if (pos_ >= text_.size()) {
      t.kind = Token::Kind::kEnd;
      return t;
    }
    const char c = text_[pos_];
    if (c == '\\') {
      // Escaped identifier: up to whitespace.
      ++pos_;
      std::size_t start = pos_;
      while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      t.kind = Token::Kind::kIdent;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$')) {
        ++pos_;
      }
      t.kind = Token::Kind::kIdent;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '\'')) {
        ++pos_;
      }
      t.kind = Token::Kind::kNumber;
      t.text = std::string(text_.substr(start, pos_ - start));
      return t;
    }
    t.kind = Token::Kind::kPunct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

  [[nodiscard]] const std::vector<std::pair<int, std::string>>& annotations()
      const {
    return annotations_;
  }

 private:
  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        std::size_t eol = text_.find('\n', pos_);
        if (eol == std::string_view::npos) eol = text_.size();
        std::string_view comment = text_.substr(pos_ + 2, eol - pos_ - 2);
        comment = util::trim(comment);
        if (util::starts_with(comment, "SSRESF_")) {
          annotations_.emplace_back(line_, std::string(comment));
        }
        pos_ = eol;
      } else if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        const std::size_t close = text_.find("*/", pos_ + 2);
        if (close == std::string_view::npos) {
          throw ParseError("unterminated block comment", line_);
        }
        for (std::size_t i = pos_; i < close; ++i) {
          if (text_[i] == '\n') ++line_;
        }
        pos_ = close + 2;
      } else {
        return;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  std::vector<std::pair<int, std::string>> annotations_;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  Netlist parse() {
    expect_ident("module");
    netlist_.set_name(expect_any_ident());
    expect_punct("(");
    // Port list: names only; direction comes from the declarations.
    if (!at_punct(")")) {
      for (;;) {
        expect_any_ident();
        if (at_punct(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    expect_punct(")");
    expect_punct(";");

    while (!at_ident("endmodule")) {
      if (cur_.kind == Token::Kind::kEnd) {
        throw ParseError("unexpected end of file; missing endmodule", cur_.line);
      }
      if (at_ident("input")) {
        advance();
        parse_decl_list(DeclKind::kInput);
      } else if (at_ident("output")) {
        advance();
        parse_decl_list(DeclKind::kOutput);
      } else if (at_ident("wire")) {
        advance();
        parse_decl_list(DeclKind::kWire);
      } else if (cur_.kind == Token::Kind::kIdent) {
        parse_instance();
      } else {
        throw ParseError("unexpected token '" + cur_.text + "'", cur_.line);
      }
    }
    advance();  // endmodule

    apply_annotations();
    // Mark outputs now that all nets exist.
    for (const auto& [name, line] : pending_outputs_) {
      const NetId net = find_net_or_throw(name, line);
      netlist_.mark_primary_output(net, name);
    }
    netlist_.finalize();
    return std::move(netlist_);
  }

 private:
  enum class DeclKind { kInput, kOutput, kWire };

  void parse_decl_list(DeclKind kind) {
    for (;;) {
      const Token name_tok = cur_;
      const std::string name = expect_any_ident();
      switch (kind) {
        case DeclKind::kInput: {
          if (nets_.count(name)) {
            throw ParseError("duplicate declaration of '" + name + "'",
                             name_tok.line);
          }
          const NetId net = netlist_.add_net(name);
          netlist_.mark_primary_input(net, name);
          nets_.emplace(name, net);
          break;
        }
        case DeclKind::kOutput: {
          get_or_create_net(name);
          pending_outputs_.emplace_back(name, name_tok.line);
          break;
        }
        case DeclKind::kWire: {
          get_or_create_net(name);
          break;
        }
      }
      if (at_punct(",")) {
        advance();
        continue;
      }
      break;
    }
    expect_punct(";");
  }

  void parse_instance() {
    const Token cell_tok = cur_;
    const std::string cell_name = expect_any_ident();
    const auto kind = kind_from_name(cell_name);
    if (!kind) {
      throw ParseError("unknown cell type '" + cell_name + "'", cell_tok.line);
    }

    std::uint32_t mem_words = 0;
    std::uint32_t mem_width = 0;
    std::uint32_t mem_tech = 0;
    if (at_punct("#")) {
      advance();
      expect_punct("(");
      for (;;) {
        expect_punct(".");
        const std::string param = expect_any_ident();
        expect_punct("(");
        const Token val_tok = cur_;
        const std::string value = expect_number();
        expect_punct(")");
        if (param == "WORDS") {
          mem_words = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
        } else if (param == "WIDTH") {
          mem_width = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
        } else if (param == "TECH") {
          mem_tech = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
        } else {
          throw ParseError("unknown parameter '" + param + "'", val_tok.line);
        }
        if (at_punct(",")) {
          advance();
          continue;
        }
        break;
      }
      expect_punct(")");
    }

    const Token inst_tok = cur_;
    const std::string inst_path = expect_any_ident();
    expect_punct("(");
    std::map<std::string, std::string> connections;  // port -> net name
    if (!at_punct(")")) {
      for (;;) {
        expect_punct(".");
        const std::string port = expect_any_ident();
        expect_punct("(");
        const std::string net = expect_any_ident();
        expect_punct(")");
        if (!connections.emplace(port, net).second) {
          throw ParseError("duplicate connection to port '" + port + "'",
                           inst_tok.line);
        }
        if (at_punct(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    expect_punct(")");
    expect_punct(";");

    // Split the hierarchical instance path into scope chain + leaf name.
    const auto segments = util::split(inst_path, '/');
    ScopeId scope = netlist_.root_scope();
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      scope = get_or_create_scope(scope, segments[i]);
    }
    const std::string& leaf = segments.back();

    auto net_for = [&](const std::string& port) {
      const auto it = connections.find(port);
      if (it == connections.end()) {
        throw ParseError(
            "missing connection for port '" + port + "' on " + inst_path,
            inst_tok.line);
      }
      return get_or_create_net(it->second);
    };

    if (*kind == CellKind::kMemory) {
      if (mem_words == 0 || mem_width == 0 || mem_width > 64) {
        throw ParseError("memory instance needs WORDS/WIDTH parameters",
                         inst_tok.line);
      }
      if (mem_tech > 2) {
        throw ParseError("invalid TECH parameter", inst_tok.line);
      }
      MemoryInfo info;
      info.words = mem_words;
      info.width = static_cast<std::uint8_t>(mem_width);
      info.tech = static_cast<netlist::MemTech>(mem_tech);
      const std::int32_t mem_index = netlist_.add_memory(std::move(info));
      const MemoryInfo& mi = netlist_.memory(mem_index);
      std::vector<NetId> inputs;
      inputs.push_back(net_for("CLK"));
      inputs.push_back(net_for("EN"));
      inputs.push_back(net_for("WE"));
      for (int i = 0; i < mi.addr_bits; ++i) {
        inputs.push_back(net_for("RADDR" + std::to_string(i)));
      }
      for (int i = 0; i < mi.addr_bits; ++i) {
        inputs.push_back(net_for("WADDR" + std::to_string(i)));
      }
      for (int i = 0; i < mi.width; ++i) {
        inputs.push_back(net_for("WDATA" + std::to_string(i)));
      }
      std::vector<NetId> outputs;
      for (int i = 0; i < mi.width; ++i) {
        outputs.push_back(net_for("RDATA" + std::to_string(i)));
      }
      const CellId cell = netlist_.add_cell(*kind, scope, leaf, std::move(inputs),
                                            std::move(outputs), mem_index);
      mem_cells_by_path_.emplace(inst_path, cell);
      const std::size_t expected = 3u + 2u * mi.addr_bits + 2u * mi.width;
      if (connections.size() != expected) {
        throw ParseError("memory instance has extra connections", inst_tok.line);
      }
    } else {
      const CellSpec& cs = spec(*kind);
      std::vector<NetId> inputs;
      for (int i = 0; i < cs.num_inputs; ++i) {
        inputs.push_back(net_for(std::string(input_port_name(*kind, i))));
      }
      std::vector<NetId> outputs;
      for (int i = 0; i < cs.num_outputs; ++i) {
        outputs.push_back(net_for(std::string(output_port_name(*kind, i))));
      }
      if (connections.size() !=
          static_cast<std::size_t>(cs.num_inputs) + cs.num_outputs) {
        throw ParseError("instance '" + inst_path + "' has extra connections",
                         inst_tok.line);
      }
      netlist_.add_cell(*kind, scope, leaf, std::move(inputs),
                        std::move(outputs));
    }
  }

  void apply_annotations() {
    for (const auto& [line, text] : lexer_.annotations()) {
      const auto fields = util::split_ws(text);
      if (fields.empty()) continue;
      if (fields[0] == "SSRESF_SCOPE") {
        if (fields.size() != 3) {
          throw ParseError("malformed SSRESF_SCOPE annotation", line);
        }
        apply_scope_class(fields[1], fields[2], line);
      } else if (fields[0] == "SSRESF_MEM_INIT") {
        if (fields.size() < 2) {
          throw ParseError("malformed SSRESF_MEM_INIT annotation", line);
        }
        const auto it = mem_cells_by_path_.find(fields[1]);
        if (it == mem_cells_by_path_.end()) {
          throw ParseError("SSRESF_MEM_INIT for unknown memory '" + fields[1] + "'",
                           line);
        }
        const Cell& cell = netlist_.cell(it->second);
        MemoryInfo& mi = netlist_.mutable_memory(cell.memory_index);
        if (mi.init.empty()) mi.init.assign(mi.words, 0);
        for (std::size_t i = 2; i < fields.size(); ++i) {
          const auto colon = fields[i].find(':');
          if (colon == std::string::npos) {
            throw ParseError("malformed init word '" + fields[i] + "'", line);
          }
          const auto index = std::strtoull(fields[i].c_str(), nullptr, 10);
          const auto value =
              std::strtoull(fields[i].c_str() + colon + 1, nullptr, 16);
          if (index >= mi.words) {
            throw ParseError("init word index out of range", line);
          }
          mi.init[index] = value;
        }
      }
    }
  }

  void apply_scope_class(const std::string& path, const std::string& cls,
                         int line) {
    // Path starts with the top module name.
    const auto segments = util::split(path, '/');
    ScopeId scope = netlist_.root_scope();
    for (std::size_t i = 1; i < segments.size(); ++i) {
      scope = get_or_create_scope(scope, segments[i]);
    }
    ModuleClass mclass;
    if (cls == "cpu") {
      mclass = ModuleClass::kCpu;
    } else if (cls == "memory") {
      mclass = ModuleClass::kMemory;
    } else if (cls == "bus") {
      mclass = ModuleClass::kBus;
    } else if (cls == "peripheral") {
      mclass = ModuleClass::kPeripheral;
    } else {
      throw ParseError("unknown module class '" + cls + "'", line);
    }
    netlist_.set_scope_class(scope, mclass);
  }

  ScopeId get_or_create_scope(ScopeId parent, const std::string& name) {
    const auto key = std::to_string(parent.index()) + "/" + name;
    const auto it = scopes_.find(key);
    if (it != scopes_.end()) return it->second;
    const ScopeId id = netlist_.add_scope(name, parent);
    scopes_.emplace(key, id);
    return id;
  }

  NetId get_or_create_net(const std::string& name) {
    const auto it = nets_.find(name);
    if (it != nets_.end()) return it->second;
    const NetId id = netlist_.add_net(name);
    nets_.emplace(name, id);
    return id;
  }

  NetId find_net_or_throw(const std::string& name, int line) {
    const auto it = nets_.find(name);
    if (it == nets_.end()) {
      throw ParseError("undeclared net '" + name + "'", line);
    }
    return it->second;
  }

  // --- token helpers ---------------------------------------------------------
  void advance() { cur_ = lexer_.next(); }

  [[nodiscard]] bool at_ident(std::string_view text) const {
    return cur_.kind == Token::Kind::kIdent && cur_.text == text;
  }
  [[nodiscard]] bool at_punct(std::string_view text) const {
    return cur_.kind == Token::Kind::kPunct && cur_.text == text;
  }

  void expect_ident(std::string_view text) {
    if (!at_ident(text)) {
      throw ParseError("expected '" + std::string(text) + "', found '" +
                           cur_.text + "'",
                       cur_.line);
    }
    advance();
  }

  std::string expect_any_ident() {
    if (cur_.kind != Token::Kind::kIdent) {
      throw ParseError("expected identifier, found '" + cur_.text + "'",
                       cur_.line);
    }
    std::string text = cur_.text;
    advance();
    return text;
  }

  std::string expect_number() {
    if (cur_.kind != Token::Kind::kNumber) {
      throw ParseError("expected number, found '" + cur_.text + "'", cur_.line);
    }
    std::string text = cur_.text;
    advance();
    return text;
  }

  void expect_punct(std::string_view text) {
    if (!at_punct(text)) {
      throw ParseError("expected '" + std::string(text) + "', found '" +
                           cur_.text + "'",
                       cur_.line);
    }
    advance();
  }

  Lexer lexer_;
  Token cur_;
  Netlist netlist_;
  std::unordered_map<std::string, NetId> nets_;
  std::unordered_map<std::string, ScopeId> scopes_;  // "parent_index/name"
  std::unordered_map<std::string, CellId> mem_cells_by_path_;
  std::vector<std::pair<std::string, int>> pending_outputs_;
};

}  // namespace

Netlist parse_verilog(std::string_view text) { return Parser(text).parse(); }

}  // namespace ssresf::netlist
