#include "netlist/netlist.h"

#include <algorithm>

#include "util/error.h"

namespace ssresf::netlist {

std::string_view module_class_name(ModuleClass c) {
  switch (c) {
    case ModuleClass::kOther:
      return "other";
    case ModuleClass::kCpu:
      return "cpu";
    case ModuleClass::kMemory:
      return "memory";
    case ModuleClass::kBus:
      return "bus";
    case ModuleClass::kPeripheral:
      return "peripheral";
  }
  return "?";
}

std::string_view mem_tech_name(MemTech tech) {
  switch (tech) {
    case MemTech::kSram:
      return "SRAM";
    case MemTech::kDram:
      return "DRAM";
    case MemTech::kRadHardSram:
      return "RadHardSRAM";
  }
  return "?";
}

Netlist::Netlist() {
  scopes_.push_back(Scope{"top", kNoScope, 0, ModuleClass::kOther});
}

ScopeId Netlist::add_scope(std::string name, ScopeId parent,
                           ModuleClass mclass) {
  if (!parent.valid() || parent.index() >= scopes_.size()) {
    throw InvalidArgument("add_scope: invalid parent scope");
  }
  Scope s;
  s.name = std::move(name);
  s.parent = parent;
  s.depth = static_cast<std::uint16_t>(scopes_[parent.index()].depth + 1);
  s.mclass = mclass;
  scopes_.push_back(std::move(s));
  finalized_ = false;
  return ScopeId{static_cast<std::uint32_t>(scopes_.size() - 1)};
}

NetId Netlist::add_net(std::string name) {
  Net n;
  n.name = std::move(name);
  n.driver = kNoCell;
  nets_.push_back(std::move(n));
  finalized_ = false;
  return NetId{static_cast<std::uint32_t>(nets_.size() - 1)};
}

CellId Netlist::add_cell(CellKind kind, ScopeId scope, std::string name,
                         std::vector<NetId> inputs, std::vector<NetId> outputs,
                         std::int32_t memory_index) {
  if (!scope.valid() || scope.index() >= scopes_.size()) {
    throw InvalidArgument("add_cell: invalid scope");
  }
  const CellSpec& s = spec(kind);
  if (kind == CellKind::kMemory) {
    if (memory_index < 0 ||
        static_cast<std::size_t>(memory_index) >= memories_.size()) {
      throw InvalidArgument("add_cell: memory cell requires memory_index");
    }
    const MemoryInfo& mi = memories_[static_cast<std::size_t>(memory_index)];
    const std::size_t want_in = 3u + 2u * mi.addr_bits + mi.width;
    if (inputs.size() != want_in || outputs.size() != mi.width) {
      throw InvalidArgument("add_cell: memory port arity mismatch");
    }
  } else {
    if (inputs.size() != s.num_inputs || outputs.size() != s.num_outputs) {
      throw InvalidArgument("add_cell: arity mismatch for " +
                            std::string(s.lib_name) + " '" + name + "'");
    }
  }
  for (NetId in : inputs) check_net(in);
  const CellId id{static_cast<std::uint32_t>(cells_.size())};
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    check_net(outputs[i]);
    Net& out = nets_[outputs[i].index()];
    if (out.driver.valid()) {
      throw InvalidArgument("add_cell: net '" + net_name(outputs[i]) +
                            "' already driven");
    }
    if (out.is_primary_input) {
      throw InvalidArgument("add_cell: cannot drive primary input net");
    }
    out.driver = id;
    out.driver_port = static_cast<std::uint16_t>(i);
  }
  Cell c;
  c.name = std::move(name);
  c.kind = kind;
  c.scope = scope;
  c.inputs = std::move(inputs);
  c.outputs = std::move(outputs);
  c.memory_index = memory_index;
  cells_.push_back(std::move(c));
  finalized_ = false;
  return id;
}

std::int32_t Netlist::add_memory(MemoryInfo info) {
  if (info.width == 0 || info.width > 64) {
    throw InvalidArgument("memory width must be in [1, 64]");
  }
  if (info.words == 0 || (info.words & (info.words - 1)) != 0) {
    throw InvalidArgument("memory word count must be a power of two");
  }
  std::uint32_t bits = 0;
  while ((1u << bits) < info.words) ++bits;
  info.addr_bits = static_cast<std::uint8_t>(bits == 0 ? 1 : bits);
  if (!info.init.empty() && info.init.size() != info.words) {
    throw InvalidArgument("memory init size mismatch");
  }
  memories_.push_back(std::move(info));
  finalized_ = false;
  return static_cast<std::int32_t>(memories_.size() - 1);
}

const MemoryInfo& Netlist::memory(std::int32_t index) const {
  if (index < 0 || static_cast<std::size_t>(index) >= memories_.size()) {
    throw InvalidArgument("invalid memory index");
  }
  return memories_[static_cast<std::size_t>(index)];
}

MemoryInfo& Netlist::mutable_memory(std::int32_t index) {
  if (index < 0 || static_cast<std::size_t>(index) >= memories_.size()) {
    throw InvalidArgument("invalid memory index");
  }
  return memories_[static_cast<std::size_t>(index)];
}

void Netlist::mark_primary_input(NetId net, std::string name) {
  check_net(net);
  Net& n = nets_[net.index()];
  if (n.driver.valid()) {
    throw InvalidArgument("primary input '" + name + "' already driven");
  }
  if (n.is_primary_input) {
    throw InvalidArgument("net already marked as primary input");
  }
  n.is_primary_input = true;
  if (n.name.empty()) n.name = name;
  primary_inputs_.emplace_back(net, std::move(name));
  finalized_ = false;
}

void Netlist::mark_primary_output(NetId net, std::string name) {
  check_net(net);
  primary_outputs_.emplace_back(net, std::move(name));
  finalized_ = false;
}

void Netlist::set_scope_class(ScopeId id, ModuleClass mclass) {
  if (!id.valid() || id.index() >= scopes_.size()) {
    throw InvalidArgument("invalid scope id");
  }
  scopes_[id.index()].mclass = mclass;
}

void Netlist::finalize() {
  // Every net must be driven or be a primary input.
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    const Net& n = nets_[i];
    if (!n.driver.valid() && !n.is_primary_input) {
      throw Error("net '" + net_name(NetId{static_cast<std::uint32_t>(i)}) +
                  "' is neither driven nor a primary input");
    }
  }
  // Fanout CSR.
  std::vector<std::uint32_t> counts(nets_.size() + 1, 0);
  for (const Cell& c : cells_) {
    for (NetId in : c.inputs) ++counts[in.index() + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  fanout_offsets_ = counts;
  fanout_entries_.assign(counts.back(), Fanout{});
  std::vector<std::uint32_t> cursor(fanout_offsets_.begin(),
                                    fanout_offsets_.end() - 1);
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const Cell& c = cells_[ci];
    for (std::size_t k = 0; k < c.inputs.size(); ++k) {
      const auto net_index = c.inputs[k].index();
      fanout_entries_[cursor[net_index]++] =
          Fanout{CellId{static_cast<std::uint32_t>(ci)},
                 static_cast<std::uint16_t>(k)};
    }
  }
  // Name lookup tables.
  net_by_name_.clear();
  net_by_name_.reserve(nets_.size());
  for (std::size_t i = 0; i < nets_.size(); ++i) {
    if (!nets_[i].name.empty()) {
      net_by_name_.emplace(nets_[i].name, NetId{static_cast<std::uint32_t>(i)});
    }
  }
  cell_by_path_.clear();
  cell_by_path_.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cell_by_path_.emplace(cell_path(CellId{static_cast<std::uint32_t>(i)}),
                          CellId{static_cast<std::uint32_t>(i)});
  }
  finalized_ = true;
}

std::span<const Fanout> Netlist::fanout(NetId id) const {
  if (!finalized_) throw InternalError("fanout() before finalize()");
  check_net(id);
  const auto begin = fanout_offsets_[id.index()];
  const auto end = fanout_offsets_[id.index() + 1];
  return {fanout_entries_.data() + begin, end - begin};
}

std::vector<CellId> Netlist::all_cells() const {
  std::vector<CellId> out;
  out.reserve(cells_.size());
  for (std::uint32_t i = 0; i < cells_.size(); ++i) out.push_back(CellId{i});
  return out;
}

std::string Netlist::scope_path(ScopeId id) const {
  if (!id.valid() || id.index() >= scopes_.size()) {
    throw InvalidArgument("invalid scope id");
  }
  if (id.index() == 0) return scopes_[0].name;
  std::vector<const Scope*> chain;
  ScopeId cur = id;
  while (cur.valid()) {
    chain.push_back(&scopes_[cur.index()]);
    cur = scopes_[cur.index()].parent;
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += (*it)->name;
  }
  return out;
}

std::string Netlist::cell_path(CellId id) const {
  if (!id.valid() || id.index() >= cells_.size()) {
    throw InvalidArgument("invalid cell id");
  }
  const Cell& c = cells_[id.index()];
  return scope_path(c.scope) + '/' + c.name;
}

ScopeId Netlist::ancestor_at_depth(ScopeId scope, std::uint16_t depth) const {
  if (!scope.valid() || scope.index() >= scopes_.size()) {
    throw InvalidArgument("invalid scope id");
  }
  ScopeId cur = scope;
  while (scopes_[cur.index()].depth > depth) {
    cur = scopes_[cur.index()].parent;
  }
  if (scopes_[cur.index()].depth != depth) {
    throw InvalidArgument("scope shallower than requested depth");
  }
  return cur;
}

ModuleClass Netlist::effective_class(ScopeId scope) const {
  ScopeId cur = scope;
  while (cur.valid()) {
    const Scope& s = scopes_[cur.index()];
    if (s.mclass != ModuleClass::kOther) return s.mclass;
    cur = s.parent;
  }
  return ModuleClass::kOther;
}

std::string Netlist::net_name(NetId id) const {
  check_net(id);
  const Net& n = nets_[id.index()];
  if (!n.name.empty()) return n.name;
  return "n" + std::to_string(id.index());
}

NetId Netlist::find_net(std::string_view name) const {
  const auto it = net_by_name_.find(std::string(name));
  return it == net_by_name_.end() ? kNoNet : it->second;
}

CellId Netlist::find_cell(std::string_view path) const {
  const auto it = cell_by_path_.find(std::string(path));
  return it == cell_by_path_.end() ? kNoCell : it->second;
}

std::size_t Netlist::num_sequential_cells() const {
  return static_cast<std::size_t>(
      std::count_if(cells_.begin(), cells_.end(), [](const Cell& c) {
        return is_sequential(c.kind);
      }));
}

std::size_t Netlist::num_combinational_cells() const {
  return cells_.size() - num_sequential_cells();
}

std::uint16_t Netlist::max_depth() const {
  std::uint16_t depth = 0;
  for (const Scope& s : scopes_) depth = std::max(depth, s.depth);
  return depth;
}

void Netlist::check_net(NetId id) const {
  if (!id.valid() || id.index() >= nets_.size()) {
    throw InvalidArgument("invalid net id");
  }
}

}  // namespace ssresf::netlist
