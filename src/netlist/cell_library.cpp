#include "netlist/cell_library.h"

#include <array>

#include "util/error.h"

namespace ssresf::netlist {

namespace {

constexpr std::array<CellSpec, kNumCellKinds> kSpecs = {{
    {"TIELO", CellKind::kConst0, 0, 1, false, 0},
    {"TIEHI", CellKind::kConst1, 0, 1, false, 0},
    {"BUFX1", CellKind::kBuf, 1, 1, false, 12},
    {"INVX1", CellKind::kInv, 1, 1, false, 8},
    {"AND2X1", CellKind::kAnd2, 2, 1, false, 16},
    {"AND3X1", CellKind::kAnd3, 3, 1, false, 18},
    {"AND4X1", CellKind::kAnd4, 4, 1, false, 20},
    {"NAND2X1", CellKind::kNand2, 2, 1, false, 10},
    {"NAND3X1", CellKind::kNand3, 3, 1, false, 12},
    {"NAND4X1", CellKind::kNand4, 4, 1, false, 14},
    {"OR2X1", CellKind::kOr2, 2, 1, false, 16},
    {"OR3X1", CellKind::kOr3, 3, 1, false, 18},
    {"OR4X1", CellKind::kOr4, 4, 1, false, 20},
    {"NOR2X1", CellKind::kNor2, 2, 1, false, 10},
    {"NOR3X1", CellKind::kNor3, 3, 1, false, 12},
    {"NOR4X1", CellKind::kNor4, 4, 1, false, 14},
    {"XOR2X1", CellKind::kXor2, 2, 1, false, 22},
    {"XNOR2X1", CellKind::kXnor2, 2, 1, false, 22},
    {"MUX2X1", CellKind::kMux2, 3, 1, false, 20},
    {"AOI21X1", CellKind::kAoi21, 3, 1, false, 14},
    {"OAI21X1", CellKind::kOai21, 3, 1, false, 14},
    {"DFFX1", CellKind::kDff, 2, 2, true, 40},
    {"DFFRX1", CellKind::kDffR, 3, 2, true, 40},
    {"DFFREX1", CellKind::kDffE, 4, 2, true, 40},
    {"SSRESF_MEM", CellKind::kMemory, 0, 0, true, 60},
}};

constexpr std::string_view kDffInputs[] = {"D", "CK", "RN", "EN"};
constexpr std::string_view kDffOutputs[] = {"Q", "QN"};
constexpr std::string_view kGateInputs[] = {"A", "B", "C", "D"};
constexpr std::string_view kMuxInputs[] = {"S", "A", "B"};

}  // namespace

const CellSpec& spec(CellKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  if (index >= kSpecs.size()) {
    throw InvalidArgument("unknown cell kind");
  }
  return kSpecs[index];
}

std::optional<CellKind> kind_from_name(std::string_view name) {
  for (const auto& s : kSpecs) {
    if (s.lib_name == name) return s.kind;
  }
  return std::nullopt;
}

std::string_view input_port_name(CellKind kind, int index) {
  const auto& s = spec(kind);
  if (index < 0 || index >= s.num_inputs) {
    throw InvalidArgument("input port index out of range");
  }
  if (is_flip_flop(kind)) return kDffInputs[index];
  if (kind == CellKind::kMux2) return kMuxInputs[index];
  return kGateInputs[index];
}

std::string_view output_port_name(CellKind kind, int index) {
  const auto& s = spec(kind);
  if (index < 0 || index >= s.num_outputs) {
    throw InvalidArgument("output port index out of range");
  }
  if (is_flip_flop(kind)) return kDffOutputs[index];
  return "Y";
}

Logic eval_cell(CellKind kind, std::span<const Logic> in) {
  switch (kind) {
    case CellKind::kConst0:
      return Logic::L0;
    case CellKind::kConst1:
      return Logic::L1;
    case CellKind::kBuf:
      return logic_not(logic_not(in[0]));
    case CellKind::kInv:
      return logic_not(in[0]);
    case CellKind::kAnd2:
      return logic_and(in[0], in[1]);
    case CellKind::kAnd3:
      return logic_and(logic_and(in[0], in[1]), in[2]);
    case CellKind::kAnd4:
      return logic_and(logic_and(in[0], in[1]), logic_and(in[2], in[3]));
    case CellKind::kNand2:
      return logic_not(logic_and(in[0], in[1]));
    case CellKind::kNand3:
      return logic_not(logic_and(logic_and(in[0], in[1]), in[2]));
    case CellKind::kNand4:
      return logic_not(
          logic_and(logic_and(in[0], in[1]), logic_and(in[2], in[3])));
    case CellKind::kOr2:
      return logic_or(in[0], in[1]);
    case CellKind::kOr3:
      return logic_or(logic_or(in[0], in[1]), in[2]);
    case CellKind::kOr4:
      return logic_or(logic_or(in[0], in[1]), logic_or(in[2], in[3]));
    case CellKind::kNor2:
      return logic_not(logic_or(in[0], in[1]));
    case CellKind::kNor3:
      return logic_not(logic_or(logic_or(in[0], in[1]), in[2]));
    case CellKind::kNor4:
      return logic_not(
          logic_or(logic_or(in[0], in[1]), logic_or(in[2], in[3])));
    case CellKind::kXor2:
      return logic_xor(in[0], in[1]);
    case CellKind::kXnor2:
      return logic_not(logic_xor(in[0], in[1]));
    case CellKind::kMux2:
      return logic_mux(in[0], in[1], in[2]);
    case CellKind::kAoi21:
      return logic_not(logic_or(logic_and(in[0], in[1]), in[2]));
    case CellKind::kOai21:
      return logic_not(logic_and(logic_or(in[0], in[1]), in[2]));
    case CellKind::kDff:
    case CellKind::kDffR:
    case CellKind::kDffE:
    case CellKind::kMemory:
      throw InvalidArgument("eval_cell called on sequential cell");
  }
  throw InvalidArgument("eval_cell: unknown cell kind");
}

PackedLogic eval_cell_packed(CellKind kind, std::span<const PackedLogic> in) {
  switch (kind) {
    case CellKind::kConst0:
      return packed_splat(Logic::L0);
    case CellKind::kConst1:
      return packed_splat(Logic::L1);
    case CellKind::kBuf:
      return packed_not(packed_not(in[0]));
    case CellKind::kInv:
      return packed_not(in[0]);
    case CellKind::kAnd2:
      return packed_and(in[0], in[1]);
    case CellKind::kAnd3:
      return packed_and(packed_and(in[0], in[1]), in[2]);
    case CellKind::kAnd4:
      return packed_and(packed_and(in[0], in[1]), packed_and(in[2], in[3]));
    case CellKind::kNand2:
      return packed_not(packed_and(in[0], in[1]));
    case CellKind::kNand3:
      return packed_not(packed_and(packed_and(in[0], in[1]), in[2]));
    case CellKind::kNand4:
      return packed_not(
          packed_and(packed_and(in[0], in[1]), packed_and(in[2], in[3])));
    case CellKind::kOr2:
      return packed_or(in[0], in[1]);
    case CellKind::kOr3:
      return packed_or(packed_or(in[0], in[1]), in[2]);
    case CellKind::kOr4:
      return packed_or(packed_or(in[0], in[1]), packed_or(in[2], in[3]));
    case CellKind::kNor2:
      return packed_not(packed_or(in[0], in[1]));
    case CellKind::kNor3:
      return packed_not(packed_or(packed_or(in[0], in[1]), in[2]));
    case CellKind::kNor4:
      return packed_not(
          packed_or(packed_or(in[0], in[1]), packed_or(in[2], in[3])));
    case CellKind::kXor2:
      return packed_xor(in[0], in[1]);
    case CellKind::kXnor2:
      return packed_not(packed_xor(in[0], in[1]));
    case CellKind::kMux2:
      return packed_mux(in[0], in[1], in[2]);
    case CellKind::kAoi21:
      return packed_not(packed_or(packed_and(in[0], in[1]), in[2]));
    case CellKind::kOai21:
      return packed_not(packed_and(packed_or(in[0], in[1]), in[2]));
    case CellKind::kDff:
    case CellKind::kDffR:
    case CellKind::kDffE:
    case CellKind::kMemory:
      throw InvalidArgument("eval_cell_packed called on sequential cell");
  }
  throw InvalidArgument("eval_cell_packed: unknown cell kind");
}

}  // namespace ssresf::netlist
