#pragma once

#include <array>
#include <vector>

#include "netlist/netlist.h"

namespace ssresf::netlist {

/// Aggregate design statistics, used by reports and by Table I accounting.
struct NetlistStats {
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  std::size_t num_sequential = 0;
  std::size_t num_combinational = 0;
  std::size_t num_memory_macros = 0;
  std::uint64_t memory_bits = 0;
  std::array<std::size_t, kNumCellKinds> per_kind{};
  std::array<std::size_t, kModuleClassCount> per_class{};  // by ModuleClass
  int max_logic_depth = 0;
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& netlist);

/// Combinational logic depth of every cell: number of combinational cells on
/// the longest path from any sequential output / primary input / constant to
/// that cell, inclusive. Sequential cells have depth 0. This is the
/// "delay_unit_count" node feature of the paper's SVM.
///
/// Throws Error if the netlist contains a combinational cycle.
[[nodiscard]] std::vector<int> compute_logic_depths(const Netlist& netlist);

/// Static timing estimate of the longest register-to-register (or pin-to-
/// register) path in picoseconds, using the per-kind intrinsic delays, the
/// flip-flop clk->q delay as launch time, and the memory macro access time
/// for asynchronous reads. Clocking a design faster than this violates
/// setup and the event-driven engine will visibly mis-sample — exactly like
/// real hardware.
[[nodiscard]] std::int64_t estimate_critical_path_ps(const Netlist& netlist);

}  // namespace ssresf::netlist
