#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace ssresf::netlist {

/// Convenience layer for constructing gate-level netlists programmatically.
/// Tracks a scope stack (RAII via ScopeGuard), generates unique instance and
/// net names, caches constant cells, and offers one helper per gate type.
///
/// Buses are plain vectors of single-bit nets, least-significant bit first.
class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string top_name = "top");

  NetlistBuilder(const NetlistBuilder&) = delete;
  NetlistBuilder& operator=(const NetlistBuilder&) = delete;

  // --- hierarchy ------------------------------------------------------------
  class ScopeGuard {
   public:
    ~ScopeGuard() { builder_->pop_scope(); }
    ScopeGuard(const ScopeGuard&) = delete;
    ScopeGuard& operator=(const ScopeGuard&) = delete;

   private:
    friend class NetlistBuilder;
    explicit ScopeGuard(NetlistBuilder* b) : builder_(b) {}
    NetlistBuilder* builder_;
  };

  /// Enter a child scope; leaves automatically when the guard dies.
  [[nodiscard]] ScopeGuard scope(std::string name,
                                 ModuleClass mclass = ModuleClass::kOther);
  [[nodiscard]] ScopeId current_scope() const { return scope_stack_.back(); }

  // --- ports and wires ------------------------------------------------------
  NetId input(std::string name);
  std::vector<NetId> input_bus(const std::string& name, int width);
  void output(NetId net, std::string name);
  void output_bus(std::span<const NetId> bus, const std::string& name);
  NetId wire(std::string name = "");
  std::vector<NetId> wire_bus(int width, const std::string& name = "");

  /// Drives an existing (so far undriven) net from `src` through a buffer.
  /// Enables forward references: create wires, consume them, drive later.
  void drive(NetId dst, NetId src);
  void drive_bus(std::span<const NetId> dst, std::span<const NetId> src);

  // --- constants (shared cells, created on first use) ------------------------
  NetId zero();
  NetId one();
  NetId constant(bool value) { return value ? one() : zero(); }

  // --- single gates -----------------------------------------------------------
  NetId gate(CellKind kind, std::vector<NetId> inputs, std::string name = "");
  NetId buf(NetId a) { return gate(CellKind::kBuf, {a}); }
  NetId inv(NetId a) { return gate(CellKind::kInv, {a}); }
  NetId and2(NetId a, NetId b) { return gate(CellKind::kAnd2, {a, b}); }
  NetId or2(NetId a, NetId b) { return gate(CellKind::kOr2, {a, b}); }
  NetId nand2(NetId a, NetId b) { return gate(CellKind::kNand2, {a, b}); }
  NetId nor2(NetId a, NetId b) { return gate(CellKind::kNor2, {a, b}); }
  NetId xor2(NetId a, NetId b) { return gate(CellKind::kXor2, {a, b}); }
  NetId xnor2(NetId a, NetId b) { return gate(CellKind::kXnor2, {a, b}); }
  /// mux2(s, a, b) = a when s == 0, b when s == 1.
  NetId mux2(NetId s, NetId a, NetId b) {
    return gate(CellKind::kMux2, {s, a, b});
  }
  NetId aoi21(NetId a, NetId b, NetId c) {
    return gate(CellKind::kAoi21, {a, b, c});
  }
  NetId oai21(NetId a, NetId b, NetId c) {
    return gate(CellKind::kOai21, {a, b, c});
  }

  /// Balanced AND / OR reduction trees over any number of nets (>= 1).
  NetId and_reduce(std::span<const NetId> nets);
  NetId or_reduce(std::span<const NetId> nets);

  // --- sequential -------------------------------------------------------------
  struct FlopOut {
    NetId q;
    NetId qn;
    CellId cell;
  };
  /// Plain DFF (no reset). Starts as X in event simulation.
  FlopOut dff(NetId d, NetId clk, std::string name = "");
  /// DFF with asynchronous active-low reset to 0.
  FlopOut dffr(NetId d, NetId clk, NetId rstn, std::string name = "");
  /// DFF with async reset and clock enable.
  FlopOut dffe(NetId d, NetId clk, NetId rstn, NetId en,
               std::string name = "");

  /// Registers a whole bus with dffr; returns the Q bus.
  std::vector<NetId> register_bus(std::span<const NetId> d, NetId clk,
                                  NetId rstn, const std::string& name);
  std::vector<NetId> register_bus_en(std::span<const NetId> d, NetId clk,
                                     NetId rstn, NetId en,
                                     const std::string& name);

  // --- memory macro -------------------------------------------------------------
  struct MemOut {
    CellId cell;
    std::vector<NetId> rdata;
  };
  /// Instantiates a behavioural 1R1W memory macro. `raddr` and `waddr` must
  /// have exactly info.addr_bits nets each and `wdata` info.width nets (all
  /// LSB first). For a classic single-port RAM pass the same nets to both
  /// address buses.
  MemOut memory(MemoryInfo info, NetId clk, NetId en, NetId we,
                std::span<const NetId> raddr, std::span<const NetId> waddr,
                std::span<const NetId> wdata, std::string name);

  // --- finish ---------------------------------------------------------------------
  /// Validates and returns the completed netlist; the builder is spent.
  [[nodiscard]] Netlist finish();

  /// Access to the netlist under construction (e.g. for memory init).
  [[nodiscard]] Netlist& netlist() { return netlist_; }

 private:
  void pop_scope();
  std::string unique_name(std::string_view base);

  Netlist netlist_;
  std::vector<ScopeId> scope_stack_;
  std::uint64_t name_counter_ = 0;
  NetId zero_net_;
  NetId one_net_;
  bool finished_ = false;
};

}  // namespace ssresf::netlist
