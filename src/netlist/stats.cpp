#include "netlist/stats.h"

#include <algorithm>

#include "util/error.h"

namespace ssresf::netlist {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.num_cells = netlist.num_cells();
  stats.num_nets = netlist.num_nets();
  for (const CellId id : netlist.all_cells()) {
    const Cell& cell = netlist.cell(id);
    ++stats.per_kind[static_cast<std::size_t>(cell.kind)];
    ++stats.per_class[static_cast<std::size_t>(netlist.cell_class(id))];
    if (is_sequential(cell.kind)) {
      ++stats.num_sequential;
    } else {
      ++stats.num_combinational;
    }
    if (cell.kind == CellKind::kMemory) {
      ++stats.num_memory_macros;
      const MemoryInfo& mi = netlist.memory(cell.memory_index);
      stats.memory_bits += static_cast<std::uint64_t>(mi.words) * mi.width;
    }
  }
  const auto depths = compute_logic_depths(netlist);
  for (int d : depths) stats.max_logic_depth = std::max(stats.max_logic_depth, d);
  return stats;
}

std::vector<int> compute_logic_depths(const Netlist& netlist) {
  // Kahn-style topological sweep over combinational cells only. Net depth =
  // depth of its driving cell (0 for primary inputs and sequential outputs);
  // cell depth = 1 + max over input net depths.
  const std::size_t num_cells = netlist.num_cells();
  std::vector<int> cell_depth(num_cells, 0);
  std::vector<int> net_depth(netlist.num_nets(), 0);
  std::vector<std::uint32_t> pending(num_cells, 0);
  std::vector<CellId> ready;

  for (std::uint32_t ci = 0; ci < num_cells; ++ci) {
    const Cell& cell = netlist.cell(CellId{ci});
    if (is_sequential(cell.kind)) continue;
    std::uint32_t unresolved = 0;
    for (const NetId in : cell.inputs) {
      const Net& net = netlist.net(in);
      if (net.is_primary_input) continue;
      const Cell& driver = netlist.cell(net.driver);
      if (!is_sequential(driver.kind)) ++unresolved;
    }
    pending[ci] = unresolved;
    if (unresolved == 0) ready.push_back(CellId{ci});
  }

  std::size_t processed = 0;
  std::size_t num_combinational = 0;
  for (std::uint32_t ci = 0; ci < num_cells; ++ci) {
    if (!is_sequential(netlist.cell(CellId{ci}).kind)) ++num_combinational;
  }

  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    ++processed;
    const Cell& cell = netlist.cell(id);
    int depth = 0;
    for (const NetId in : cell.inputs) {
      depth = std::max(depth, net_depth[in.index()]);
    }
    // Constants contribute no logic level.
    const bool is_const =
        cell.kind == CellKind::kConst0 || cell.kind == CellKind::kConst1;
    cell_depth[id.index()] = is_const ? 0 : depth + 1;
    for (const NetId out : cell.outputs) {
      net_depth[out.index()] = cell_depth[id.index()];
      for (const Fanout& fo : netlist.fanout(out)) {
        const Cell& sink = netlist.cell(fo.cell);
        if (is_sequential(sink.kind)) continue;
        if (--pending[fo.cell.index()] == 0) ready.push_back(fo.cell);
      }
    }
  }

  if (processed != num_combinational) {
    throw Error("netlist contains a combinational cycle");
  }
  return cell_depth;
}

std::int64_t estimate_critical_path_ps(const Netlist& netlist) {
  // Topological arrival-time sweep over "evaluation nodes": combinational
  // cells (all pins are timing inputs) and memory macros (asynchronous read
  // path RADDR -> RDATA only; writes are sampled, not combinational).
  const std::size_t n = netlist.num_cells();
  const std::int64_t clk_to_q = spec(CellKind::kDff).delay_ps;
  const std::int64_t mem_access = spec(CellKind::kMemory).delay_ps;
  constexpr std::int64_t kSetupPs = 30;

  auto timing_inputs = [&](const Cell& cell) {
    std::vector<NetId> ins;
    if (cell.kind == CellKind::kMemory) {
      const MemoryInfo& mi = netlist.memory(cell.memory_index);
      for (int i = 0; i < mi.addr_bits; ++i) ins.push_back(cell.inputs[3u + i]);
    } else {
      ins = cell.inputs;
    }
    return ins;
  };
  auto is_eval_node = [&](const Cell& cell) {
    return !is_sequential(cell.kind) || cell.kind == CellKind::kMemory;
  };
  auto net_is_source = [&](NetId id) {
    const Net& net = netlist.net(id);
    if (net.is_primary_input) return true;
    return is_flip_flop(netlist.cell(net.driver).kind);
  };

  std::vector<std::int64_t> arrival(netlist.num_nets(), 0);
  for (std::uint32_t i = 0; i < netlist.num_nets(); ++i) {
    const Net& net = netlist.net(NetId{i});
    if (!net.is_primary_input && net.driver.valid() &&
        is_flip_flop(netlist.cell(net.driver).kind)) {
      arrival[i] = clk_to_q;
    }
  }

  std::vector<std::uint32_t> pending(n, 0);
  std::vector<CellId> ready;
  std::size_t num_nodes = 0;
  for (std::uint32_t ci = 0; ci < n; ++ci) {
    const Cell& cell = netlist.cell(CellId{ci});
    if (!is_eval_node(cell)) continue;
    ++num_nodes;
    std::uint32_t unresolved = 0;
    for (const NetId in : timing_inputs(cell)) {
      if (!net_is_source(in)) ++unresolved;
    }
    pending[ci] = unresolved;
    if (unresolved == 0) ready.push_back(CellId{ci});
  }

  std::int64_t worst = clk_to_q;  // at minimum one FF launches somewhere
  std::size_t processed = 0;
  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    ++processed;
    const Cell& cell = netlist.cell(id);
    std::int64_t in_arrival = 0;
    for (const NetId in : timing_inputs(cell)) {
      in_arrival = std::max(in_arrival, arrival[in.index()]);
    }
    const std::int64_t out_time =
        in_arrival +
        (cell.kind == CellKind::kMemory ? mem_access : spec(cell.kind).delay_ps);
    worst = std::max(worst, out_time);
    for (const NetId out : cell.outputs) {
      arrival[out.index()] = out_time;
      for (const Fanout& fo : netlist.fanout(out)) {
        const Cell& sink = netlist.cell(fo.cell);
        if (!is_eval_node(sink)) continue;
        if (sink.kind == CellKind::kMemory) {
          const MemoryInfo& mi = netlist.memory(sink.memory_index);
          if (fo.input_index < 3 || fo.input_index >= 3u + mi.addr_bits) {
            continue;
          }
        }
        if (--pending[fo.cell.index()] == 0) ready.push_back(fo.cell);
      }
    }
  }
  if (processed != num_nodes) {
    throw Error("estimate_critical_path_ps: combinational cycle");
  }
  return worst + kSetupPs;
}

}  // namespace ssresf::netlist
