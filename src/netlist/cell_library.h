#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "netlist/logic.h"

namespace ssresf::netlist {

/// The standard-cell vocabulary of generated and parsed netlists. Mirrors a
/// small industrial library: basic combinational gates, a mux, two
/// AOI/OAI complex gates, D flip-flop variants, and a behavioural memory
/// macro (real synthesized netlists instantiate SRAM macros, not bitcells).
enum class CellKind : std::uint8_t {
  kConst0,
  kConst1,
  kBuf,
  kInv,
  kAnd2,
  kAnd3,
  kAnd4,
  kNand2,
  kNand3,
  kNand4,
  kOr2,
  kOr3,
  kOr4,
  kNor2,
  kNor3,
  kNor4,
  kXor2,
  kXnor2,
  kMux2,   // inputs: S, A (sel=0), B (sel=1)
  kAoi21,  // Y = !((A & B) | C)
  kOai21,  // Y = !((A | B) & C)
  kDff,    // inputs: D, CK           outputs: Q, QN
  kDffR,   // inputs: D, CK, RN       outputs: Q, QN   (async, active-low)
  kDffE,   // inputs: D, CK, RN, EN   outputs: Q, QN
  kMemory, // behavioural macro; see MemoryInfo
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::kMemory) + 1;

struct CellSpec {
  std::string_view lib_name;  // library cell name used in structural Verilog
  CellKind kind;
  std::uint8_t num_inputs;    // fixed input count (0 for kMemory: variable)
  std::uint8_t num_outputs;   // fixed output count (0 for kMemory: variable)
  bool sequential;            // holds state across clock edges
  int delay_ps;               // intrinsic propagation (or clk->q) delay
};

/// Static description of a cell kind.
[[nodiscard]] const CellSpec& spec(CellKind kind);

/// Reverse lookup from a library cell name (e.g. "NAND2X1").
[[nodiscard]] std::optional<CellKind> kind_from_name(std::string_view name);

/// Port name for structural Verilog, e.g. kNand2 input 0 is "A", the DFF
/// output 1 is "QN". Memory macros use generated per-bit names instead.
[[nodiscard]] std::string_view input_port_name(CellKind kind, int index);
[[nodiscard]] std::string_view output_port_name(CellKind kind, int index);

[[nodiscard]] constexpr bool is_sequential(CellKind kind) {
  return kind == CellKind::kDff || kind == CellKind::kDffR ||
         kind == CellKind::kDffE || kind == CellKind::kMemory;
}

[[nodiscard]] constexpr bool is_flip_flop(CellKind kind) {
  return kind == CellKind::kDff || kind == CellKind::kDffR ||
         kind == CellKind::kDffE;
}

/// Evaluate a purely combinational cell on its inputs. Precondition: `kind`
/// is combinational and `inputs.size() == spec(kind).num_inputs`.
[[nodiscard]] Logic eval_cell(CellKind kind, std::span<const Logic> inputs);

/// Word-parallel variant of eval_cell: evaluates all 64 lanes of the packed
/// inputs at once. Lane-wise identical to eval_cell (the bit-parallel engine
/// and its equivalence tests rely on this).
[[nodiscard]] PackedLogic eval_cell_packed(CellKind kind,
                                           std::span<const PackedLogic> inputs);

}  // namespace ssresf::netlist
