#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace ssresf::netlist {

/// Emits a flat, structural gate-level Verilog module (one module per
/// netlist). Hierarchical instance paths are preserved in escaped
/// identifiers ("\cpu/alu/g1 "); module-class tags and memory contents are
/// carried in "// SSRESF_*" annotation comments so that write -> parse is a
/// lossless round trip.
[[nodiscard]] std::string write_verilog(const Netlist& netlist);

/// Parses the structural subset emitted by write_verilog: one module,
/// input/output/wire declarations, named-port cell instances from the SSRESF
/// cell library, and SSRESF annotation comments. Throws ParseError with a
/// line number on malformed input. The returned netlist is finalized.
[[nodiscard]] Netlist parse_verilog(std::string_view text);

}  // namespace ssresf::netlist
