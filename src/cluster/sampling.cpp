#include "cluster/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace ssresf::cluster {

using netlist::CellId;
using netlist::CellKind;

namespace {

/// Draw `count` entries from `pool` without replacement, probability
/// proportional to `weight(cell)`; drawn cells are moved to the front.
void weighted_partial_sample(std::vector<CellId>& pool, std::size_t begin,
                             std::size_t count,
                             std::span<const double> weights, util::Rng& rng) {
  for (std::size_t i = begin; i < begin + count && i < pool.size(); ++i) {
    double total = 0.0;
    for (std::size_t j = i; j < pool.size(); ++j) {
      total += weights[pool[j].index()];
    }
    std::size_t chosen = i;
    if (total > 0.0) {
      double pick = rng.uniform() * total;
      for (std::size_t j = i; j < pool.size(); ++j) {
        pick -= weights[pool[j].index()];
        if (pick <= 0.0) {
          chosen = j;
          break;
        }
      }
    } else {
      chosen = i + static_cast<std::size_t>(rng.below(pool.size() - i));
    }
    std::swap(pool[i], pool[chosen]);
  }
}

}  // namespace

std::vector<ClusterSample> sample_clusters(const netlist::Netlist& netlist,
                                           const ClusteringResult& clustering,
                                           const SamplingConfig& config,
                                           util::Rng& rng,
                                           std::span<const double> cell_weights) {
  if (config.fraction <= 0.0 || config.fraction > 1.0) {
    throw InvalidArgument("sampling fraction must be in (0, 1]");
  }
  if (config.weighting != SampleWeighting::kUniform &&
      cell_weights.size() != netlist.num_cells()) {
    throw InvalidArgument("weighted sampling needs per-cell weights");
  }
  std::vector<ClusterSample> out;
  for (std::size_t k = 0; k < clustering.clusters.size(); ++k) {
    std::vector<CellId> eligible;
    for (const CellId id : clustering.clusters[k]) {
      const CellKind kind = netlist.cell(id).kind;
      if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
      if (kind == CellKind::kMemory) {
        // One entry per allowed strike; duplicates are distinct strikes.
        for (int r = 0; r < config.memory_macro_draws; ++r) {
          eligible.push_back(id);
        }
        continue;
      }
      eligible.push_back(id);
    }
    if (eligible.empty()) continue;
    const auto want = static_cast<std::size_t>(std::clamp<long long>(
        static_cast<long long>(
            std::ceil(config.fraction * static_cast<double>(eligible.size()))),
        config.min_per_cluster, config.max_per_cluster));
    const std::size_t count = std::min(want, eligible.size());

    std::size_t uniform_count = count;
    std::size_t weighted_count = 0;
    if (config.weighting == SampleWeighting::kXsectWeighted) {
      uniform_count = 0;
      weighted_count = count;
    } else if (config.weighting == SampleWeighting::kMixed) {
      uniform_count = count / 2;
      weighted_count = count - uniform_count;
    }

    // Uniform part: partial Fisher-Yates over [0, uniform_count).
    for (std::size_t i = 0; i < uniform_count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(eligible.size() - i));
      std::swap(eligible[i], eligible[j]);
    }
    // Weighted part continues from the uniform prefix, excluding drawn cells.
    if (weighted_count > 0) {
      weighted_partial_sample(eligible, uniform_count, weighted_count,
                              cell_weights, rng);
    }
    eligible.resize(count);
    out.push_back(ClusterSample{static_cast<int>(k), std::move(eligible)});
  }
  return out;
}

}  // namespace ssresf::cluster
