#pragma once

#include "cluster/kcluster.h"

namespace ssresf::cluster {

/// How strike locations are drawn within a cluster:
///  - kUniform: every cell equally likely (pure equal-proportion sampling);
///  - kXsectWeighted: probability proportional to the cell's soft-error
///    cross-section — importance sampling of where particles physically
///    land (a memory macro is hit far more often than an inverter);
///  - kMixed: half uniform, half cross-section weighted (covers both the
///    populous logic and the large-area structures).
enum class SampleWeighting { kUniform, kXsectWeighted, kMixed };

/// Equal-proportional random sampling within clusters (Sec. III-B): from
/// every cluster draw ceil(fraction * size) cells without replacement,
/// clamped to [min_per_cluster, max_per_cluster]. Tie cells (constants) are
/// not injectable and are excluded up front.
struct SamplingConfig {
  double fraction = 0.05;
  int min_per_cluster = 2;
  int max_per_cluster = 1 << 30;
  SampleWeighting weighting = SampleWeighting::kUniform;
  /// A memory macro stands for a whole array, so it may be drawn up to this
  /// many times per campaign — each draw is an independent (word, bit)
  /// strike.
  int memory_macro_draws = 16;
};

struct ClusterSample {
  int cluster = 0;
  std::vector<netlist::CellId> cells;
};

/// `cell_weights` (indexed by cell id) is required for the weighted modes;
/// pass an empty span for kUniform.
[[nodiscard]] std::vector<ClusterSample> sample_clusters(
    const netlist::Netlist& netlist, const ClusteringResult& clustering,
    const SamplingConfig& config, util::Rng& rng,
    std::span<const double> cell_weights = {});

}  // namespace ssresf::cluster
