#pragma once

#include <vector>

#include "cluster/distance.h"
#include "util/rng.h"

namespace ssresf::cluster {

/// Output of Algorithm 1 (clustering analysis for internal cells).
struct ClusteringResult {
  /// clusters[k] lists the member cells of cluster k (creation order).
  std::vector<std::vector<netlist::CellId>> clusters;
  /// cluster_of[cell.index()] = cluster index.
  std::vector<int> cluster_of;
  /// Weighted cell count per cluster (memory macros expand to their word
  /// count when ClusteringConfig::expand_memory_weight is set) — the
  /// CellN_Cluster term of Eq. 2.
  std::vector<std::uint64_t> cluster_weight;
  int iterations = 0;
  int layer_depth = 0;
};

struct ClusteringConfig {
  int num_clusters = 8;   // the paper's KN
  int layer_depth = 0;    // the paper's LN; 0 = netlist max depth
  int max_iterations = 64;
  /// Count a memory macro as `words` cells. The paper's netlists represent
  /// RAMs as word/bitcell arrays, so memory regions carry enough cell mass
  /// to anchor their own clusters; a behavioural macro must be re-expanded
  /// to keep that property.
  bool expand_memory_weight = true;
};

/// Algorithm 1 of the paper: k-medoids-style clustering under the Eq. 1
/// hierarchy distance. Random initial centers, nearest-center assignment,
/// medoid update (cell minimizing the within-cluster distance sum), iterate
/// until the centers stop moving.
///
/// Implementation note: all cells sharing a scope are equivalent under
/// Eq. 1, so the solver clusters cell-count-weighted *scopes* and expands
/// the result back to cells — bit-identical to the naive cell-level
/// algorithm (which naive_cluster_cells implements for cross-checking) but
/// O(scopes^2) instead of O(cells^2) per iteration.
[[nodiscard]] ClusteringResult cluster_cells(const netlist::Netlist& netlist,
                                             const ClusteringConfig& config,
                                             util::Rng& rng);

/// Direct cell-level implementation of Algorithm 1, for testing and for the
/// ablation bench. Quadratic in the cell count — use on small designs only.
[[nodiscard]] ClusteringResult naive_cluster_cells(
    const netlist::Netlist& netlist, const ClusteringConfig& config,
    util::Rng& rng);

}  // namespace ssresf::cluster
