#include "cluster/distance.h"

#include "util/error.h"

namespace ssresf::cluster {

using netlist::Netlist;
using netlist::ScopeId;

HierarchyDistance::HierarchyDistance(const Netlist& netlist, int layer_depth)
    : netlist_(&netlist),
      layer_depth_(layer_depth > 0 ? layer_depth : netlist.max_depth()) {
  if (layer_depth_ <= 0) layer_depth_ = 1;  // flat designs still work
  if (layer_depth_ > 62) {
    throw InvalidArgument("layer depth too large for 2^(LN-Li) weights");
  }
}

ScopeId HierarchyDistance::module_at_layer(ScopeId scope, int layer) const {
  const auto depth = netlist_->scope(scope).depth;
  if (depth < layer) return netlist::kNoScope;  // absent at this layer
  return netlist_->ancestor_at_depth(scope,
                                     static_cast<std::uint16_t>(layer));
}

std::uint64_t HierarchyDistance::between_scopes(ScopeId a, ScopeId b) const {
  std::uint64_t distance = 0;
  for (int li = 1; li <= layer_depth_; ++li) {
    const ScopeId ma = module_at_layer(a, li);
    const ScopeId mb = module_at_layer(b, li);
    if (ma != mb) {
      distance += std::uint64_t{1} << (layer_depth_ - li);
    }
  }
  return distance;
}

std::uint64_t HierarchyDistance::between_cells(netlist::CellId a,
                                               netlist::CellId b) const {
  return between_scopes(netlist_->cell(a).scope, netlist_->cell(b).scope);
}

}  // namespace ssresf::cluster
