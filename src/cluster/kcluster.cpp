#include "cluster/kcluster.h"

#include <algorithm>
#include <limits>
#include <span>
#include <unordered_map>

#include "util/error.h"

namespace ssresf::cluster {

using netlist::CellId;
using netlist::Netlist;
using netlist::ScopeId;

namespace {

/// Per-cell weight: a memory macro counts as its word count when expansion
/// is enabled, everything else as one cell.
std::uint64_t cell_weight(const Netlist& netlist, CellId id, bool expand) {
  const netlist::Cell& cell = netlist.cell(id);
  if (expand && cell.kind == netlist::CellKind::kMemory) {
    return netlist.memory(cell.memory_index).words;
  }
  return 1;
}

/// Draw `count` distinct cells as the initial cluster centers
/// (random_select of Algorithm 1); `cum_weights` makes the draw uniform
/// over weighted pseudo-cells (empty = uniform over cells).
std::vector<CellId> random_centers(std::size_t num_cells, int count,
                                   util::Rng& rng,
                                   std::span<const std::uint64_t> cum_weights = {}) {
  std::vector<CellId> centers;
  centers.reserve(static_cast<std::size_t>(count));
  while (centers.size() < static_cast<std::size_t>(count)) {
    CellId candidate;
    if (cum_weights.empty()) {
      candidate = CellId{static_cast<std::uint32_t>(rng.below(num_cells))};
    } else {
      const std::uint64_t pick = rng.below(cum_weights.back());
      const auto it =
          std::upper_bound(cum_weights.begin(), cum_weights.end(), pick);
      candidate = CellId{
          static_cast<std::uint32_t>(it - cum_weights.begin())};
    }
    if (std::find(centers.begin(), centers.end(), candidate) == centers.end()) {
      centers.push_back(candidate);
    }
  }
  return centers;
}

ClusteringResult finish_result(const Netlist& netlist,
                               std::vector<int> cluster_of, int num_clusters,
                               int iterations, int layer_depth, bool expand) {
  ClusteringResult result;
  result.cluster_of = std::move(cluster_of);
  result.iterations = iterations;
  result.layer_depth = layer_depth;
  result.clusters.resize(static_cast<std::size_t>(num_clusters));
  result.cluster_weight.assign(static_cast<std::size_t>(num_clusters), 0);
  for (std::uint32_t ci = 0; ci < netlist.num_cells(); ++ci) {
    const auto k = static_cast<std::size_t>(result.cluster_of[ci]);
    result.clusters[k].push_back(CellId{ci});
    result.cluster_weight[k] += cell_weight(netlist, CellId{ci}, expand);
  }
  return result;
}

}  // namespace

ClusteringResult naive_cluster_cells(const Netlist& netlist,
                                     const ClusteringConfig& config,
                                     util::Rng& rng) {
  const std::size_t n = netlist.num_cells();
  if (n == 0) throw InvalidArgument("clustering an empty netlist");
  const int kn = std::min<int>(config.num_clusters, static_cast<int>(n));
  const HierarchyDistance dist(netlist, config.layer_depth);

  std::vector<CellId> centers = random_centers(n, kn, rng);
  std::vector<int> assignment(n, 0);
  int iterations = 0;

  for (; iterations < config.max_iterations; ++iterations) {
    // assign_cells: nearest center, ties to the first center.
    for (std::uint32_t ci = 0; ci < n; ++ci) {
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      int best_cluster = 0;
      for (int k = 0; k < kn; ++k) {
        const std::uint64_t d = dist.between_cells(CellId{ci}, centers[static_cast<std::size_t>(k)]);
        if (d < best) {
          best = d;
          best_cluster = k;
        }
      }
      assignment[ci] = best_cluster;
    }
    // update_centers: medoid = first cell minimizing the within-cluster
    // distance sum; an empty cluster keeps its previous center.
    std::vector<CellId> new_centers = centers;
    for (int k = 0; k < kn; ++k) {
      std::uint64_t best_sum = std::numeric_limits<std::uint64_t>::max();
      CellId best_cell = netlist::kNoCell;
      for (std::uint32_t ci = 0; ci < n; ++ci) {
        if (assignment[ci] != k) continue;
        std::uint64_t sum = 0;
        for (std::uint32_t cj = 0; cj < n; ++cj) {
          if (assignment[cj] != k) continue;
          sum += dist.between_cells(CellId{ci}, CellId{cj});
        }
        if (sum < best_sum) {
          best_sum = sum;
          best_cell = CellId{ci};
        }
      }
      if (best_cell.valid()) new_centers[static_cast<std::size_t>(k)] = best_cell;
    }
    if (new_centers == centers) {
      ++iterations;
      break;
    }
    centers = std::move(new_centers);
  }
  return finish_result(netlist, std::move(assignment), kn, iterations,
                       dist.layer_depth(), /*expand=*/false);
}

ClusteringResult cluster_cells(const Netlist& netlist,
                               const ClusteringConfig& config,
                               util::Rng& rng) {
  const std::size_t n = netlist.num_cells();
  if (n == 0) throw InvalidArgument("clustering an empty netlist");
  const int kn = std::min<int>(config.num_clusters, static_cast<int>(n));
  const HierarchyDistance dist(netlist, config.layer_depth);

  // Group cells by scope: Eq. 1 only sees scopes, so clustering over
  // cell-count-weighted scopes is exact. Items are ordered by first cell
  // occurrence so tie-breaking matches the naive cell-order scan.
  std::unordered_map<std::uint32_t, std::size_t> item_of_scope;
  struct Item {
    ScopeId scope;
    std::uint64_t weight = 0;        // number of (pseudo-)cells
    std::uint32_t first_cell = 0;    // smallest cell index in this scope
  };
  std::vector<Item> items;
  std::vector<std::size_t> item_of_cell(n);
  std::vector<std::uint64_t> cum_weights(n);
  std::uint64_t running = 0;
  for (std::uint32_t ci = 0; ci < n; ++ci) {
    const ScopeId scope = netlist.cell(CellId{ci}).scope;
    auto [it, inserted] = item_of_scope.try_emplace(scope.index(), items.size());
    if (inserted) items.push_back(Item{scope, 0, ci});
    const std::uint64_t w =
        cell_weight(netlist, CellId{ci}, config.expand_memory_weight);
    items[it->second].weight += w;
    item_of_cell[ci] = it->second;
    running += w;
    cum_weights[ci] = running;
  }
  const std::size_t m = items.size();

  // Pairwise scope distances (m is small: one entry per leaf module).
  std::vector<std::uint64_t> d(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const std::uint64_t v = dist.between_scopes(items[i].scope, items[j].scope);
      d[i * m + j] = v;
      d[j * m + i] = v;
    }
  }

  // Centers remain cell ids to mirror the naive algorithm exactly (weighted
  // draw degenerates to uniform when expansion is off).
  std::vector<CellId> centers =
      config.expand_memory_weight
          ? random_centers(n, kn, rng, cum_weights)
          : random_centers(n, kn, rng);
  std::vector<int> item_assignment(m, 0);
  int iterations = 0;

  for (; iterations < config.max_iterations; ++iterations) {
    for (std::size_t i = 0; i < m; ++i) {
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      int best_cluster = 0;
      for (int k = 0; k < kn; ++k) {
        const std::size_t center_item =
            item_of_cell[centers[static_cast<std::size_t>(k)].index()];
        const std::uint64_t dv = d[i * m + center_item];
        if (dv < best) {
          best = dv;
          best_cluster = k;
        }
      }
      item_assignment[i] = best_cluster;
    }

    std::vector<CellId> new_centers = centers;
    for (int k = 0; k < kn; ++k) {
      std::uint64_t best_sum = std::numeric_limits<std::uint64_t>::max();
      std::uint32_t best_first_cell = std::numeric_limits<std::uint32_t>::max();
      ScopeId best_scope = netlist::kNoScope;
      for (std::size_t i = 0; i < m; ++i) {
        if (item_assignment[i] != k) continue;
        std::uint64_t sum = 0;
        for (std::size_t j = 0; j < m; ++j) {
          if (item_assignment[j] != k) continue;
          sum += items[j].weight * d[i * m + j];
        }
        // The naive scan keeps the first minimal cell in cell order: prefer
        // strictly smaller sums, then the scope seen earliest.
        if (sum < best_sum ||
            (sum == best_sum && items[i].first_cell < best_first_cell)) {
          best_sum = sum;
          best_first_cell = items[i].first_cell;
          best_scope = items[i].scope;
        }
      }
      if (best_scope.valid()) {
        new_centers[static_cast<std::size_t>(k)] = CellId{best_first_cell};
      }
    }
    if (new_centers == centers) {
      ++iterations;
      break;
    }
    centers = std::move(new_centers);
  }

  std::vector<int> assignment(n);
  for (std::uint32_t ci = 0; ci < n; ++ci) {
    assignment[ci] = item_assignment[item_of_cell[ci]];
  }
  return finish_result(netlist, std::move(assignment), kn, iterations,
                       dist.layer_depth(), config.expand_memory_weight);
}

}  // namespace ssresf::cluster
