#pragma once

#include "netlist/netlist.h"

namespace ssresf::cluster {

/// The hierarchical distance of Eq. 1:
///
///   D(A,B) = sum over layers Li = 1..LN of
///              Compare(Module_A_Li, Module_B_Li) * 2^(LN - Li)
///
/// where Module_X_Li is the module instance containing X at hierarchy depth
/// Li and Compare is 0 for identical instances, 1 otherwise. Cells deeper
/// than a layer keep comparing their ancestors; a cell shallower than a
/// layer compares as "absent" (equal only if both are absent).
///
/// Divergence at a shallow layer therefore dominates: once two cells differ
/// at layer Li they differ at every deeper layer, so the distance is a
/// suffix sum of powers of two — cells in the same leaf module have
/// distance 0, cells diverging at the top layer have the maximum
/// 2^LN - 1.
class HierarchyDistance {
 public:
  /// `layer_depth` is the paper's LN; 0 selects the netlist's maximum
  /// hierarchy depth.
  HierarchyDistance(const netlist::Netlist& netlist, int layer_depth = 0);

  [[nodiscard]] int layer_depth() const { return layer_depth_; }

  /// Distance between the scopes containing two cells.
  [[nodiscard]] std::uint64_t between_cells(netlist::CellId a,
                                            netlist::CellId b) const;

  /// Distance between two scopes (all cells of a scope are equidistant to
  /// everything, which is what makes the scope-level optimization exact).
  [[nodiscard]] std::uint64_t between_scopes(netlist::ScopeId a,
                                             netlist::ScopeId b) const;

 private:
  [[nodiscard]] netlist::ScopeId module_at_layer(netlist::ScopeId scope,
                                                 int layer) const;

  const netlist::Netlist* netlist_;
  int layer_depth_;
};

}  // namespace ssresf::cluster
