#pragma once

#include "cluster/kcluster.h"
#include "fi/campaign.h"
#include "ml/dataset.h"

namespace ssresf::core {

/// The candidate structural node features. The first six are the features
/// shown in the paper's Fig. 4 example (top_mod_type, reg_type,
/// delay_unit_count, signal_type, layer_depth, signal_bit); the remaining
/// four are additional engineered candidates that the Fig. 5 selection
/// experiment sweeps over.
inline constexpr int kNumNodeFeatures = 10;
[[nodiscard]] const std::vector<std::string>& node_feature_names();

/// Precomputed per-netlist context so feature extraction is O(1) per node.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const netlist::Netlist& netlist);

  /// Structural features of a circuit node (a cell instance).
  [[nodiscard]] std::vector<double> extract(netlist::CellId cell) const;

 private:
  const netlist::Netlist* netlist_;
  std::vector<int> logic_depths_;
  std::vector<std::size_t> scope_cell_count_;
};

/// Builds the labeled sensitivity dataset from campaign records: features
/// from the injected node, label +1 when the injection produced a soft
/// error (highly sensitive node), -1 otherwise.
[[nodiscard]] ml::Dataset build_dataset(const soc::SocModel& model,
                                        const fi::CampaignResult& campaign);

}  // namespace ssresf::core
