#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/kcluster.h"
#include "fi/campaign.h"
#include "fi/record_store.h"
#include "ml/dataset.h"

namespace ssresf::core {

/// The candidate structural node features. The first six are the features
/// shown in the paper's Fig. 4 example (top_mod_type, reg_type,
/// delay_unit_count, signal_type, layer_depth, signal_bit); the remaining
/// four are additional engineered candidates that the Fig. 5 selection
/// experiment sweeps over.
inline constexpr int kNumNodeFeatures = 10;
[[nodiscard]] const std::vector<std::string>& node_feature_names();

/// Precomputed per-netlist context so feature extraction is O(1) per node.
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const netlist::Netlist& netlist);

  /// Structural features of a circuit node (a cell instance).
  [[nodiscard]] std::vector<double> extract(netlist::CellId cell) const;

 private:
  const netlist::Netlist* netlist_;
  std::vector<int> logic_depths_;
  std::vector<std::size_t> scope_cell_count_;
};

/// Builds the labeled sensitivity dataset from campaign records: features
/// from the injected node, label +1 when the injection produced a soft
/// error (highly sensitive node), -1 otherwise.
[[nodiscard]] ml::Dataset build_dataset(const soc::SocModel& model,
                                        const fi::CampaignResult& campaign);

/// Running mean/variance of one feature, accumulated one value at a time —
/// the numerically stable update net/health's WorkerHealth uses.
struct FeatureMoments {
  std::uint64_t n = 0;
  double mean = 0.0;
  double m2 = 0.0;

  void add(double x) {
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
  }
  [[nodiscard]] double variance() const {
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
  }
};

/// RecordSink that turns a record stream into the labeled dataset one batch
/// at a time, tracking per-feature Welford moments as it goes — the dataset
/// side of the streaming record flow. Label rule identical to
/// build_dataset: +1 when the record's own injection erred OR its cluster
/// is in the high-SER half (`cluster_high`), -1 otherwise. Dataset row
/// order follows append order; feed batches in ascending index order (a
/// RecordSource) to reproduce the canonical artifact byte-for-byte.
class DatasetAccumulator : public fi::RecordSink {
 public:
  DatasetAccumulator(const soc::SocModel& model,
                     std::span<const fi::ClusterStats> clusters);

  void append(const fi::RecordBatch& batch) override;

  [[nodiscard]] ml::Dataset take_dataset() { return std::move(dataset_); }
  [[nodiscard]] const std::array<FeatureMoments, kNumNodeFeatures>& moments()
      const {
    return moments_;
  }
  [[nodiscard]] std::uint64_t rows() const { return rows_; }

 private:
  const soc::SocModel* model_;
  FeatureExtractor extractor_;
  std::vector<bool> cluster_high_;
  ml::Dataset dataset_;
  std::array<FeatureMoments, kNumNodeFeatures> moments_{};
  std::uint64_t rows_ = 0;
};

/// The sensitive-cluster half of the label rule, shared by build_dataset
/// and DatasetAccumulator: clusters sorted by SER, the top non-zero half
/// marked high. Needs only cluster statistics — no records.
[[nodiscard]] std::vector<bool> high_ser_clusters(
    std::span<const fi::ClusterStats> clusters);

/// Source-based build_dataset: identical rows to the CampaignResult
/// overload (which now delegates here through a VectorSource), but consumes
/// any RecordSource — a v1 shard file, a v2 columnar store, or an
/// in-memory vector — one batch at a time.
[[nodiscard]] ml::Dataset build_dataset(
    const soc::SocModel& model, fi::RecordSource& source,
    std::span<const fi::ClusterStats> clusters);

}  // namespace ssresf::core
