#include "core/features.h"

#include <algorithm>
#include <cctype>
#include <string>

#include "netlist/stats.h"
#include "util/error.h"

namespace ssresf::core {

using netlist::Cell;
using netlist::CellId;
using netlist::CellKind;
using netlist::Netlist;

const std::vector<std::string>& node_feature_names() {
  static const std::vector<std::string> names = {
      "top_mod_type",     // module class of the containing hierarchy
      "reg_type",         // cell family (comb kinds / FF variants / memory)
      "delay_unit_count", // combinational logic depth of the node
      "signal_type",      // role of the output net (state / data / output)
      "layer_depth",      // hierarchy depth of the containing scope
      "signal_bit",       // bus bit index parsed from the instance name
      "fanout_count",     // sinks of the output net
      "fanin_count",      // input pin count
      "scope_cell_count", // size of the containing leaf module
      "intrinsic_delay",  // library cell delay
  };
  return names;
}

namespace {

double reg_type_code(CellKind kind) {
  switch (kind) {
    case CellKind::kDff:
      return 1;
    case CellKind::kDffR:
      return 2;
    case CellKind::kDffE:
      return 3;
    case CellKind::kMemory:
      return 4;
    case CellKind::kInv:
    case CellKind::kBuf:
      return 5;
    case CellKind::kXor2:
    case CellKind::kXnor2:
      return 6;
    case CellKind::kMux2:
    case CellKind::kAoi21:
    case CellKind::kOai21:
      return 7;
    default:
      return 8;  // simple AND/OR family
  }
}

/// Trailing "_<digits>" of an instance name, e.g. pc_17 -> 17.
double signal_bit_of(const std::string& name) {
  const auto pos = name.find_last_of('_');
  if (pos == std::string::npos || pos + 1 >= name.size()) return 0;
  int value = 0;
  for (std::size_t i = pos + 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    value = value * 10 + (name[i] - '0');
    if (value > 1 << 20) return 0;
  }
  return value;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const Netlist& netlist)
    : netlist_(&netlist), logic_depths_(netlist::compute_logic_depths(netlist)) {
  scope_cell_count_.assign(netlist.num_scopes(), 0);
  for (const CellId id : netlist.all_cells()) {
    ++scope_cell_count_[netlist.cell(id).scope.index()];
  }
}

std::vector<double> FeatureExtractor::extract(CellId id) const {
  const Netlist& nl = *netlist_;
  const Cell& cell = nl.cell(id);
  std::vector<double> f(kNumNodeFeatures, 0.0);
  f[0] = static_cast<double>(nl.cell_class(id));
  f[1] = reg_type_code(cell.kind);
  f[2] = logic_depths_[id.index()];
  // signal_type: classify the output net by what it feeds.
  double signal_type = 0;  // plain combinational
  if (!cell.outputs.empty()) {
    bool feeds_state = false;
    bool feeds_clock_or_ctrl = false;
    for (const netlist::Fanout& fo : nl.fanout(cell.outputs[0])) {
      const Cell& sink = nl.cell(fo.cell);
      if (netlist::is_flip_flop(sink.kind)) {
        if (fo.input_index == 0) {
          feeds_state = true;  // next-state data
        } else {
          feeds_clock_or_ctrl = true;  // clock / reset / enable
        }
      } else if (sink.kind == CellKind::kMemory && fo.input_index < 3) {
        feeds_clock_or_ctrl = true;
      }
    }
    if (feeds_clock_or_ctrl) {
      signal_type = 3;
    } else if (feeds_state) {
      signal_type = 2;
    }
    // Primary-output cones rank highest.
    for (const auto& [net, name] : nl.primary_outputs()) {
      if (net == cell.outputs[0]) {
        signal_type = 4;
        break;
      }
    }
  }
  f[3] = signal_type;
  f[4] = nl.scope(cell.scope).depth;
  f[5] = signal_bit_of(cell.name);
  f[6] = cell.outputs.empty()
             ? 0.0
             : static_cast<double>(nl.fanout(cell.outputs[0]).size());
  f[7] = static_cast<double>(cell.inputs.size());
  f[8] = static_cast<double>(scope_cell_count_[cell.scope.index()]);
  f[9] = static_cast<double>(netlist::spec(cell.kind).delay_ps);
  return f;
}

std::vector<bool> high_ser_clusters(
    std::span<const fi::ClusterStats> clusters) {
  // Label rule (Sec. III-D/E): clusters sorted by soft-error probability;
  // nodes of the high-probability half form the sensitive-node list.
  std::vector<const fi::ClusterStats*> sampled;
  for (const fi::ClusterStats& c : clusters) {
    if (c.samples > 0) sampled.push_back(&c);
  }
  std::sort(sampled.begin(), sampled.end(),
            [](const fi::ClusterStats* a, const fi::ClusterStats* b) {
              return a->ser_percent > b->ser_percent;
            });
  std::vector<bool> cluster_high(clusters.size(), false);
  const std::size_t high_count = (sampled.size() + 1) / 2;
  for (std::size_t i = 0; i < high_count; ++i) {
    // Clusters with zero SER are never "high", even in the top half.
    if (sampled[i]->ser_percent > 0.0) {
      cluster_high[static_cast<std::size_t>(sampled[i]->cluster)] = true;
    }
  }
  return cluster_high;
}

DatasetAccumulator::DatasetAccumulator(
    const soc::SocModel& model, std::span<const fi::ClusterStats> clusters)
    : model_(&model),
      extractor_(model.netlist),
      cluster_high_(high_ser_clusters(clusters)),
      dataset_(node_feature_names()) {}

void DatasetAccumulator::append(const fi::RecordBatch& batch) {
  for (std::size_t i = 0; i < batch.row_count(); ++i) {
    const std::size_t cluster = batch.cluster[i];
    if (cluster >= cluster_high_.size()) {
      throw Error("record stream: cluster " + std::to_string(cluster) +
                  " out of range (" + std::to_string(cluster_high_.size()) +
                  " clusters)");
    }
    // A node whose own injection produced a soft error is sensitive
    // regardless of its cluster.
    const bool high = batch.soft_error[i] != 0 || cluster_high_[cluster];
    const std::vector<double> features =
        extractor_.extract(netlist::CellId(batch.cell[i]));
    for (int k = 0; k < kNumNodeFeatures; ++k) {
      moments_[static_cast<std::size_t>(k)].add(
          features[static_cast<std::size_t>(k)]);
    }
    dataset_.add(features, high ? 1 : -1);
    ++rows_;
  }
}

ml::Dataset build_dataset(const soc::SocModel& model,
                          fi::RecordSource& source,
                          std::span<const fi::ClusterStats> clusters) {
  DatasetAccumulator accumulator(model, clusters);
  fi::RecordBatch batch;
  while (source.next_batch(batch)) accumulator.append(batch);
  return accumulator.take_dataset();
}

ml::Dataset build_dataset(const soc::SocModel& model,
                          const fi::CampaignResult& campaign) {
  fi::VectorSource source(campaign.records);
  return build_dataset(model, source, campaign.clusters);
}

}  // namespace ssresf::core
