#include "core/ssresf.h"

#include "util/timer.h"

namespace ssresf::core {

using netlist::CellId;
using netlist::CellKind;

PipelineResult run_pipeline(const soc::SocModel& model,
                            const PipelineConfig& config,
                            const radiation::SoftErrorDatabase& database) {
  PipelineResult result;
  result.campaign = fi::run_campaign(model, config.campaign, database);
  result.dataset = build_dataset(model, result.campaign);

  util::Rng ml_rng(config.ml_seed);
  result.chosen_svm = config.svm;
  if (config.run_grid_search) {
    util::Rng grid_rng = ml_rng.fork();
    const auto grid =
        ml::grid_search(result.dataset, config.svm, config.grid_c,
                        config.grid_gamma, config.cv_folds, grid_rng);
    result.chosen_svm = grid.best;
  }

  util::Rng cv_rng = ml_rng.fork();
  result.cv = ml::cross_validate(result.dataset, result.chosen_svm,
                                 config.cv_folds, cv_rng);

  util::Timer train_timer;
  ml::Dataset scaled = result.dataset;
  result.scaler.fit_transform(scaled);
  result.model = ml::SvmClassifier(result.chosen_svm);
  result.model.train(scaled);
  result.train_seconds = train_timer.seconds();

  // Machine-learning phase output: classify every injectable node (the
  // timing figure for Table III) ...
  std::vector<CellId> all_nodes;
  for (const CellId id : model.netlist.all_cells()) {
    const CellKind kind = model.netlist.cell(id).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
    all_nodes.push_back(id);
  }
  util::Timer predict_timer;
  const auto predictions =
      predict_nodes(model, result.model, result.scaler, all_nodes);
  result.predict_seconds = predict_timer.seconds();
  (void)predictions;

  // ... and the Fig. 7 SVM series: per-class high-sensitivity fraction over
  // the fault-injection-list nodes (the paper's test dataset), directly
  // comparable to the simulation columns.
  const FeatureExtractor extractor(model.netlist);
  std::array<std::size_t, 5> high{};
  std::array<std::size_t, 5> total{};
  for (const fi::InjectionRecord& record : result.campaign.records) {
    const auto cls = static_cast<std::size_t>(record.module_class);
    ++total[cls];
    const auto features = extractor.extract(record.event.target.cell);
    if (result.model.predict(result.scaler.transform_row(features)) == 1) {
      ++high[cls];
    }
  }
  for (std::size_t c = 0; c < 5; ++c) {
    result.predicted_class_percent[c] =
        total[c] > 0 ? 100.0 * static_cast<double>(high[c]) /
                           static_cast<double>(total[c])
                     : 0.0;
  }
  return result;
}

std::vector<int> predict_nodes(const soc::SocModel& model,
                               const ml::SvmClassifier& classifier,
                               const ml::MinMaxScaler& scaler,
                               std::span<const CellId> cells) {
  const FeatureExtractor extractor(model.netlist);
  std::vector<int> out;
  out.reserve(cells.size());
  for (const CellId id : cells) {
    const auto features = extractor.extract(id);
    out.push_back(classifier.predict(scaler.transform_row(features)));
  }
  return out;
}

}  // namespace ssresf::core
