#include "core/ssresf.h"

#include "core/session.h"

namespace ssresf::core {

using netlist::CellId;

PipelineResult run_pipeline(const soc::SocModel& model,
                            const PipelineConfig& config,
                            const radiation::SoftErrorDatabase& database) {
  // The one-shot pipeline is a purely in-memory Session over an anonymous
  // scenario: identical stage order, RNG fork sequence, and outputs as the
  // pre-Session implementation — now with exactly one code path to maintain.
  ScenarioSpec spec;
  spec.campaign.config = config.campaign;
  spec.svm = config.svm;
  spec.cv_folds = config.cv_folds;
  spec.run_grid_search = config.run_grid_search;
  spec.grid_c = config.grid_c;
  spec.grid_gamma = config.grid_gamma;
  spec.ml_seed = config.ml_seed;
  Session session(model, std::move(spec), database);
  return session.run_all();
}

std::vector<int> predict_nodes(const soc::SocModel& model,
                               const ml::SvmClassifier& classifier,
                               const ml::MinMaxScaler& scaler,
                               std::span<const CellId> cells) {
  const FeatureExtractor extractor(model.netlist);
  std::vector<int> out;
  out.reserve(cells.size());
  for (const CellId id : cells) {
    const auto features = extractor.extract(id);
    out.push_back(classifier.predict(scaler.transform_row(features)));
  }
  return out;
}

}  // namespace ssresf::core
