#include "core/scenario.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace ssresf::core {

using util::YamlNode;

std::string_view engine_name(sim::EngineKind kind) {
  switch (kind) {
    case sim::EngineKind::kEvent:
      return "event";
    case sim::EngineKind::kLevelized:
      return "levelized";
    case sim::EngineKind::kBitParallel:
      return "bit-parallel";
  }
  return "levelized";
}

sim::EngineKind parse_engine_name(std::string_view name) {
  if (name == "event") return sim::EngineKind::kEvent;
  if (name == "levelized") return sim::EngineKind::kLevelized;
  if (name == "bit-parallel") return sim::EngineKind::kBitParallel;
  throw InvalidArgument("unknown engine '" + std::string(name) +
                        "' (expected event | levelized | bit-parallel)");
}

std::string_view kernel_name(ml::KernelType type) {
  switch (type) {
    case ml::KernelType::kLinear:
      return "linear";
    case ml::KernelType::kRbf:
      return "rbf";
    case ml::KernelType::kPoly:
      return "poly";
  }
  return "rbf";
}

ml::KernelType parse_kernel_name(std::string_view name) {
  if (name == "linear") return ml::KernelType::kLinear;
  if (name == "rbf") return ml::KernelType::kRbf;
  if (name == "poly") return ml::KernelType::kPoly;
  throw InvalidArgument("unknown kernel '" + std::string(name) +
                        "' (expected linear | rbf | poly)");
}

std::string_view weighting_name(cluster::SampleWeighting w) {
  switch (w) {
    case cluster::SampleWeighting::kUniform:
      return "uniform";
    case cluster::SampleWeighting::kXsectWeighted:
      return "xsect";
    case cluster::SampleWeighting::kMixed:
      return "mixed";
  }
  return "mixed";
}

cluster::SampleWeighting parse_weighting_name(std::string_view name) {
  if (name == "uniform") return cluster::SampleWeighting::kUniform;
  if (name == "xsect") return cluster::SampleWeighting::kXsectWeighted;
  if (name == "mixed") return cluster::SampleWeighting::kMixed;
  throw InvalidArgument("unknown weighting '" + std::string(name) +
                        "' (expected uniform | xsect | mixed)");
}

namespace {

/// Shortest round-trip-exact decimal of a double, so dump() -> parse() is a
/// fixed point (and a seed like 1e-7 survives the trip bit-exactly).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
      std::sscanf(shorter, "%lf", &back);
      if (back == v) return shorter;
    }
  }
  return buf;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw InvalidArgument("scenario: " + path + ": " + what);
}

/// Rejects keys outside `allowed` with the full dotted path — a typo must
/// never silently fall back to a default and change results.
void check_keys(const YamlNode& map, const std::string& path,
                std::initializer_list<std::string_view> allowed) {
  if (!map.is_map()) fail(path, "expected a map");
  for (const auto& [key, value] : map.entries()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::string known;
      for (const auto a : allowed) {
        known += known.empty() ? std::string(a) : " | " + std::string(a);
      }
      fail(path.empty() ? key : path + "." + key,
           "unknown key (expected " + known + ")");
    }
  }
}

std::string child_path(const std::string& path, std::string_view key) {
  return path.empty() ? std::string(key) : path + "." + std::string(key);
}

template <typename T, typename Fn>
T get_or(const YamlNode& map, const std::string& path, std::string_view key,
         T fallback, Fn&& convert) {
  if (!map.has(key)) return fallback;
  try {
    return convert(map.at(key));
  } catch (const Error& e) {
    // Any library error (yaml conversion included) gains the dotted key
    // path — the codec's diagnostic promise.
    fail(child_path(path, key), e.what());
  }
}

double get_double(const YamlNode& map, const std::string& path,
                  std::string_view key, double fallback) {
  return get_or(map, path, key, fallback,
                [](const YamlNode& n) { return n.as_double(); });
}

int get_int(const YamlNode& map, const std::string& path, std::string_view key,
            int fallback) {
  return get_or(map, path, key, fallback,
                [](const YamlNode& n) { return static_cast<int>(n.as_int()); });
}

std::uint64_t get_u64(const YamlNode& map, const std::string& path,
                      std::string_view key, std::uint64_t fallback) {
  return get_or(map, path, key, fallback, [](const YamlNode& n) {
    const long long v = n.as_int();
    if (v < 0) throw InvalidArgument("expected a non-negative integer");
    return static_cast<std::uint64_t>(v);
  });
}

std::string get_string(const YamlNode& map, const std::string& path,
                       std::string_view key, std::string fallback) {
  return get_or(map, path, key, std::move(fallback),
                [](const YamlNode& n) { return n.as_string(); });
}

bool get_bool(const YamlNode& map, const std::string& path,
              std::string_view key, bool fallback) {
  return get_or(map, path, key, fallback, [](const YamlNode& n) {
    const std::string& s = n.as_string();
    if (s == "true" || s == "yes" || s == "on") return true;
    if (s == "false" || s == "no" || s == "off") return false;
    throw InvalidArgument("'" + s + "' is not a boolean");
  });
}

std::vector<double> get_double_list(const YamlNode& map,
                                    const std::string& path,
                                    std::string_view key,
                                    std::vector<double> fallback) {
  return get_or(map, path, key, std::move(fallback), [](const YamlNode& n) {
    if (!n.is_list()) throw InvalidArgument("expected a list of numbers");
    std::vector<double> out;
    out.reserve(n.size());
    for (std::size_t i = 0; i < n.size(); ++i) out.push_back(n.at(i).as_double());
    return out;
  });
}

YamlNode double_list(const std::vector<double>& values) {
  YamlNode list = YamlNode::list();
  for (const double v : values) list.push_back(YamlNode::scalar(fmt_double(v)));
  return list;
}

}  // namespace

ScenarioSpec ScenarioSpec::from_yaml(const YamlNode& root) {
  ScenarioSpec spec;
  check_keys(root, "", {"scenario", "model", "campaign", "ml", "fleet"});
  spec.name = get_string(root, "", "scenario", spec.name);
  if (spec.name.empty()) fail("scenario", "name must not be empty");

  if (root.has("model")) {
    const YamlNode& model = root.at("model");
    check_keys(model, "model", {"workload", "isa", "bus", "mem_kb"});
    spec.campaign.workload =
        get_string(model, "model", "workload", spec.campaign.workload);
    spec.campaign.isa = get_string(model, "model", "isa", spec.campaign.isa);
    spec.campaign.bus = get_string(model, "model", "bus", spec.campaign.bus);
    spec.campaign.mem_kb = get_int(model, "model", "mem_kb", spec.campaign.mem_kb);
    if (spec.campaign.mem_kb <= 0) fail("model.mem_kb", "must be positive");
  }

  fi::CampaignConfig& config = spec.campaign.config;
  if (root.has("campaign")) {
    const YamlNode& c = root.at("campaign");
    check_keys(c, "campaign",
               {"engine", "seed", "run_cycles", "max_cycles", "environment",
                "clustering", "sampling"});
    config.engine = get_or(c, "campaign", "engine", config.engine,
                           [](const YamlNode& n) {
                             return parse_engine_name(n.as_string());
                           });
    config.seed = get_u64(c, "campaign", "seed", config.seed);
    config.run_cycles = get_int(c, "campaign", "run_cycles", config.run_cycles);
    config.max_cycles = get_int(c, "campaign", "max_cycles", config.max_cycles);
    if (c.has("environment")) {
      const YamlNode& env = c.at("environment");
      check_keys(env, "campaign.environment", {"flux", "let"});
      config.environment.flux = get_double(env, "campaign.environment", "flux",
                                           config.environment.flux);
      config.environment.let = get_double(env, "campaign.environment", "let",
                                          config.environment.let);
    }
    if (c.has("clustering")) {
      const YamlNode& cl = c.at("clustering");
      check_keys(cl, "campaign.clustering",
                 {"clusters", "layer_depth", "max_iterations",
                  "expand_memory_weight"});
      config.clustering.num_clusters =
          get_int(cl, "campaign.clustering", "clusters",
                  config.clustering.num_clusters);
      config.clustering.layer_depth = get_int(
          cl, "campaign.clustering", "layer_depth", config.clustering.layer_depth);
      config.clustering.max_iterations =
          get_int(cl, "campaign.clustering", "max_iterations",
                  config.clustering.max_iterations);
      config.clustering.expand_memory_weight =
          get_bool(cl, "campaign.clustering", "expand_memory_weight",
                   config.clustering.expand_memory_weight);
    }
    if (c.has("sampling")) {
      const YamlNode& s = c.at("sampling");
      check_keys(s, "campaign.sampling",
                 {"fraction", "min_per_cluster", "max_per_cluster", "weighting",
                  "memory_macro_draws"});
      config.sampling.fraction = get_double(s, "campaign.sampling", "fraction",
                                            config.sampling.fraction);
      config.sampling.min_per_cluster =
          get_int(s, "campaign.sampling", "min_per_cluster",
                  config.sampling.min_per_cluster);
      config.sampling.max_per_cluster =
          get_int(s, "campaign.sampling", "max_per_cluster",
                  config.sampling.max_per_cluster);
      config.sampling.weighting =
          get_or(s, "campaign.sampling", "weighting", config.sampling.weighting,
                 [](const YamlNode& n) {
                   return parse_weighting_name(n.as_string());
                 });
      config.sampling.memory_macro_draws =
          get_int(s, "campaign.sampling", "memory_macro_draws",
                  config.sampling.memory_macro_draws);
    }
  }

  if (root.has("ml")) {
    const YamlNode& ml = root.at("ml");
    check_keys(ml, "ml",
               {"kernel", "gamma", "degree", "coef0", "c", "tolerance",
                "cv_folds", "grid_search", "grid_c", "grid_gamma",
                "feature_selection", "seed"});
    spec.svm.kernel.type = get_or(ml, "ml", "kernel", spec.svm.kernel.type,
                                  [](const YamlNode& n) {
                                    return parse_kernel_name(n.as_string());
                                  });
    spec.svm.kernel.gamma = get_double(ml, "ml", "gamma", spec.svm.kernel.gamma);
    spec.svm.kernel.degree = get_int(ml, "ml", "degree", spec.svm.kernel.degree);
    spec.svm.kernel.coef0 = get_double(ml, "ml", "coef0", spec.svm.kernel.coef0);
    spec.svm.c = get_double(ml, "ml", "c", spec.svm.c);
    spec.svm.tolerance = get_double(ml, "ml", "tolerance", spec.svm.tolerance);
    spec.cv_folds = get_int(ml, "ml", "cv_folds", spec.cv_folds);
    if (spec.cv_folds < 2) fail("ml.cv_folds", "must be at least 2");
    spec.run_grid_search =
        get_bool(ml, "ml", "grid_search", spec.run_grid_search);
    spec.grid_c = get_double_list(ml, "ml", "grid_c", std::move(spec.grid_c));
    spec.grid_gamma =
        get_double_list(ml, "ml", "grid_gamma", std::move(spec.grid_gamma));
    spec.feature_selection =
        get_bool(ml, "ml", "feature_selection", spec.feature_selection);
    spec.ml_seed = get_u64(ml, "ml", "seed", spec.ml_seed);
  }

  if (root.has("fleet")) {
    const YamlNode& fleet = root.at("fleet");
    check_keys(fleet, "fleet",
               {"secret", "connect_timeout", "worker_timeout",
                "frame_deadline", "election_timeout", "peer_port",
                "advertise_addr"});
    spec.fleet.secret =
        get_string(fleet, "fleet", "secret", spec.fleet.secret);
    spec.fleet.connect_timeout = get_double(fleet, "fleet", "connect_timeout",
                                            spec.fleet.connect_timeout);
    if (spec.fleet.connect_timeout <= 0) {
      fail("fleet.connect_timeout", "must be positive");
    }
    spec.fleet.worker_timeout = get_double(fleet, "fleet", "worker_timeout",
                                           spec.fleet.worker_timeout);
    if (spec.fleet.worker_timeout <= 0) {
      fail("fleet.worker_timeout", "must be positive");
    }
    spec.fleet.frame_deadline = get_double(fleet, "fleet", "frame_deadline",
                                           spec.fleet.frame_deadline);
    if (spec.fleet.frame_deadline <= 0) {
      fail("fleet.frame_deadline", "must be positive");
    }
    const double election = get_double(fleet, "fleet", "election_timeout",
                                       spec.fleet.election_timeout);
    if (election < 0) {
      fail("fleet.election_timeout", "must be >= 0 (0 disables elections)");
    }
    spec.fleet.election_timeout = election;
    const std::uint64_t peer_port =
        get_u64(fleet, "fleet", "peer_port", spec.fleet.peer_port);
    if (peer_port > 65535) {
      fail("fleet.peer_port", "must be a port number (0..65535)");
    }
    spec.fleet.peer_port = static_cast<std::uint16_t>(peer_port);
    spec.fleet.advertise_addr =
        get_string(fleet, "fleet", "advertise_addr", spec.fleet.advertise_addr);
  }
  return spec;
}

ScenarioSpec ScenarioSpec::parse(std::string_view text) {
  return from_yaml(YamlNode::parse(text));
}

ScenarioSpec ScenarioSpec::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open scenario file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse(text.str());
  } catch (const Error& e) {
    throw InvalidArgument(path + ": " + e.what());
  }
}

YamlNode ScenarioSpec::to_yaml() const {
  YamlNode root = YamlNode::map();
  root.set("scenario", YamlNode::scalar(name));

  YamlNode model = YamlNode::map();
  model.set("workload", YamlNode::scalar(campaign.workload));
  model.set("isa", YamlNode::scalar(campaign.isa));
  model.set("bus", YamlNode::scalar(campaign.bus));
  model.set("mem_kb", YamlNode::scalar(std::to_string(campaign.mem_kb)));
  root.set("model", std::move(model));

  const fi::CampaignConfig& config = campaign.config;
  YamlNode c = YamlNode::map();
  c.set("engine", YamlNode::scalar(std::string(engine_name(config.engine))));
  c.set("seed", YamlNode::scalar(std::to_string(config.seed)));
  c.set("run_cycles", YamlNode::scalar(std::to_string(config.run_cycles)));
  c.set("max_cycles", YamlNode::scalar(std::to_string(config.max_cycles)));
  YamlNode env = YamlNode::map();
  env.set("flux", YamlNode::scalar(fmt_double(config.environment.flux)));
  env.set("let", YamlNode::scalar(fmt_double(config.environment.let)));
  c.set("environment", std::move(env));
  YamlNode cl = YamlNode::map();
  cl.set("clusters",
         YamlNode::scalar(std::to_string(config.clustering.num_clusters)));
  cl.set("layer_depth",
         YamlNode::scalar(std::to_string(config.clustering.layer_depth)));
  cl.set("max_iterations",
         YamlNode::scalar(std::to_string(config.clustering.max_iterations)));
  cl.set("expand_memory_weight",
         YamlNode::scalar(config.clustering.expand_memory_weight ? "true"
                                                                 : "false"));
  c.set("clustering", std::move(cl));
  YamlNode s = YamlNode::map();
  s.set("fraction", YamlNode::scalar(fmt_double(config.sampling.fraction)));
  s.set("min_per_cluster",
        YamlNode::scalar(std::to_string(config.sampling.min_per_cluster)));
  s.set("max_per_cluster",
        YamlNode::scalar(std::to_string(config.sampling.max_per_cluster)));
  s.set("weighting",
        YamlNode::scalar(std::string(weighting_name(config.sampling.weighting))));
  s.set("memory_macro_draws",
        YamlNode::scalar(std::to_string(config.sampling.memory_macro_draws)));
  c.set("sampling", std::move(s));
  root.set("campaign", std::move(c));

  YamlNode ml = YamlNode::map();
  ml.set("kernel", YamlNode::scalar(std::string(kernel_name(svm.kernel.type))));
  ml.set("gamma", YamlNode::scalar(fmt_double(svm.kernel.gamma)));
  ml.set("degree", YamlNode::scalar(std::to_string(svm.kernel.degree)));
  ml.set("coef0", YamlNode::scalar(fmt_double(svm.kernel.coef0)));
  ml.set("c", YamlNode::scalar(fmt_double(svm.c)));
  ml.set("tolerance", YamlNode::scalar(fmt_double(svm.tolerance)));
  ml.set("cv_folds", YamlNode::scalar(std::to_string(cv_folds)));
  ml.set("grid_search", YamlNode::scalar(run_grid_search ? "true" : "false"));
  ml.set("grid_c", double_list(grid_c));
  ml.set("grid_gamma", double_list(grid_gamma));
  ml.set("feature_selection",
         YamlNode::scalar(feature_selection ? "true" : "false"));
  ml.set("seed", YamlNode::scalar(std::to_string(ml_seed)));
  root.set("ml", std::move(ml));

  YamlNode f = YamlNode::map();
  f.set("secret", YamlNode::scalar(fleet.secret));
  f.set("connect_timeout", YamlNode::scalar(fmt_double(fleet.connect_timeout)));
  f.set("worker_timeout", YamlNode::scalar(fmt_double(fleet.worker_timeout)));
  f.set("frame_deadline", YamlNode::scalar(fmt_double(fleet.frame_deadline)));
  f.set("election_timeout",
        YamlNode::scalar(fmt_double(fleet.election_timeout)));
  f.set("peer_port", YamlNode::scalar(std::to_string(fleet.peer_port)));
  f.set("advertise_addr", YamlNode::scalar(fleet.advertise_addr));
  root.set("fleet", std::move(f));
  return root;
}

std::string ScenarioSpec::dump() const { return to_yaml().dump(); }

soc::SocModel ScenarioSpec::build_model() const {
  return net::build_model(campaign);
}

}  // namespace ssresf::core
