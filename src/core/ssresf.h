#pragma once

#include "core/features.h"
#include "fi/sensitivity.h"
#include "ml/cross_validation.h"
#include "ml/feature_selection.h"

namespace ssresf::core {

/// Configuration of the full SSRESF flow (Fig. 1): dynamic-simulation phase
/// (campaign) followed by the machine-learning phase (SVM training and
/// sensitive-node classification).
struct PipelineConfig {
  fi::CampaignConfig campaign;
  ml::SvmConfig svm;               // starting point; grid search can refine
  int cv_folds = 10;
  bool run_grid_search = false;    // optimize (C, gamma) before training
  std::vector<double> grid_c = {0.5, 1, 4, 16};
  std::vector<double> grid_gamma = {0.05, 0.2, 1.0, 4.0};
  std::uint64_t ml_seed = 7;
};

/// Everything the evaluation section needs from one SoC.
struct PipelineResult {
  fi::CampaignResult campaign;
  ml::Dataset dataset;           // labeled, unscaled node features
  ml::CvResult cv;               // 10-fold CV metrics (Table II row)
  ml::SvmConfig chosen_svm;      // after optional grid search
  ml::SvmClassifier model;       // trained on the full scaled dataset
  ml::MinMaxScaler scaler;
  double train_seconds = 0.0;
  double predict_seconds = 0.0;  // classifying every injectable node
  /// Predicted high-sensitivity percentage per module class (SVM series of
  /// Fig. 7), indexed by ModuleClass.
  std::array<double, netlist::kModuleClassCount> predicted_class_percent{};
  /// Fraction of held-out CV predictions agreeing with simulation (the
  /// "Model Accuracy" column of Table III).
  [[nodiscard]] double model_accuracy() const { return cv.aggregate.accuracy(); }
};

/// Runs campaign -> dataset -> (grid search) -> cross-validation -> final
/// model -> whole-netlist prediction.
///
/// Source-compatible one-shot wrapper over the staged core::Session
/// (core/session.h) — equivalent to Session::run_all() on an in-memory
/// session. New code that needs resumable stages, persisted artifacts
/// (.ssfs/.ssds/.ssmd), progress hooks, or socket-delegated simulation
/// should construct a Session from a ScenarioSpec instead.
[[nodiscard]] PipelineResult run_pipeline(
    const soc::SocModel& model, const PipelineConfig& config,
    const radiation::SoftErrorDatabase& database);

/// Classifies every injectable cell of the netlist with a trained model;
/// returns +1/-1 per cell in `cells`.
[[nodiscard]] std::vector<int> predict_nodes(
    const soc::SocModel& model, const ml::SvmClassifier& classifier,
    const ml::MinMaxScaler& scaler, std::span<const netlist::CellId> cells);

}  // namespace ssresf::core
