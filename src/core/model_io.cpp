#include "core/model_io.h"

#include <fstream>

#include "util/atomic_file.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::core {

namespace {

constexpr std::uint8_t kModelVersion = 1;
constexpr std::uint8_t kDatasetVersion = 1;

void put_string(util::ByteWriter& out, const std::string& s) {
  out.sized_bytes(s.data(), s.size());
}

std::string get_string(util::ByteReader& in) {
  const std::size_t n = in.element_count(1);
  std::string s(n, '\0');
  if (n > 0) in.bytes(s.data(), n);
  return s;
}

/// magic | version | payload length (varint) | FNV-1a(payload) | payload.
void write_artifact(const std::string& path, const char magic[4],
                    std::uint8_t version, util::ByteWriter&& payload) {
  util::ByteWriter file;
  file.bytes(magic, 4);
  file.u8(version);
  file.varint(payload.size());
  file.fixed64(util::fnv1a(payload.data()));
  const auto body = payload.take();
  file.bytes(body.data(), body.size());
  // Crash-safe: stage resume trusts any .ssmd/.ssds it finds at the final
  // path, so a killed run must leave the old complete artifact, not a torn
  // new one.
  util::atomic_write_file(path, file.data());
}

/// Reads and integrity-checks an artifact; returns the verified payload.
std::vector<std::uint8_t> read_artifact(const std::string& path,
                                        const char magic[4],
                                        std::uint8_t version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open '" + path + "'");
  std::vector<std::uint8_t> raw((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  util::ByteReader reader(raw);
  char got_magic[4] = {};
  reader.bytes(got_magic, 4);
  if (std::string_view(got_magic, 4) != std::string_view(magic, 4)) {
    throw InvalidArgument("'" + path + "' is not a " +
                          std::string(magic, 4) + " artifact");
  }
  const std::uint8_t got_version = reader.u8();
  if (got_version != version) {
    throw InvalidArgument("'" + path + "': unsupported " +
                          std::string(magic, 4) + " version " +
                          std::to_string(got_version));
  }
  const std::size_t length = reader.element_count(1);
  const std::uint64_t digest = reader.fixed64();
  if (length != reader.remaining()) {
    throw InvalidArgument("'" + path + "': truncated artifact");
  }
  std::vector<std::uint8_t> payload(length);
  if (length > 0) reader.bytes(payload.data(), length);
  if (util::fnv1a(payload) != digest) {
    throw InvalidArgument("'" + path + "': payload digest mismatch (corrupt "
                          "or tampered artifact)");
  }
  return payload;
}

}  // namespace

void write_model_file(const std::string& path, const ModelBundle& bundle) {
  util::ByteWriter out;
  out.varint(bundle.config_digest);
  put_string(out, bundle.scenario_name);
  bundle.chosen_svm.encode(out);
  bundle.model.encode(out);
  bundle.scaler.encode(out);
  out.varint(bundle.selected_features.size());
  for (const int f : bundle.selected_features) {
    out.varint(static_cast<std::uint64_t>(f));
  }
  out.varint(bundle.feature_names.size());
  for (const std::string& n : bundle.feature_names) put_string(out, n);
  out.f64(bundle.cv_mean_accuracy);
  write_artifact(path, "SSMD", kModelVersion, std::move(out));
}

ModelBundle read_model_file(const std::string& path) {
  const auto payload = read_artifact(path, "SSMD", kModelVersion);
  util::ByteReader in(payload);
  try {
    ModelBundle bundle;
    bundle.config_digest = in.varint();
    bundle.scenario_name = get_string(in);
    bundle.chosen_svm = ml::SvmConfig::decode(in);
    bundle.model = ml::SvmClassifier::decode(in);
    bundle.scaler = ml::MinMaxScaler::decode(in);
    const std::size_t num_selected = in.element_count(1);
    bundle.selected_features.reserve(num_selected);
    for (std::size_t i = 0; i < num_selected; ++i) {
      bundle.selected_features.push_back(static_cast<int>(in.varint()));
    }
    const std::size_t num_names = in.element_count(1);
    bundle.feature_names.reserve(num_names);
    for (std::size_t i = 0; i < num_names; ++i) {
      bundle.feature_names.push_back(get_string(in));
    }
    bundle.cv_mean_accuracy = in.f64();
    if (!in.at_end()) {
      throw InvalidArgument("trailing bytes after model bundle");
    }
    return bundle;
  } catch (const Error& e) {
    throw InvalidArgument("'" + path + "': malformed model bundle: " +
                          e.what());
  }
}

std::vector<double> bundle_scaled_row(const ModelBundle& bundle,
                                      std::span<const double> raw_features) {
  std::vector<double> selected;
  selected.reserve(bundle.selected_features.size());
  for (const int f : bundle.selected_features) {
    if (f < 0 || static_cast<std::size_t>(f) >= raw_features.size()) {
      throw InvalidArgument(
          "model bundle: feature mask does not fit this feature vector (mask "
          "index " + std::to_string(f) + ", row width " +
          std::to_string(raw_features.size()) + ")");
    }
    selected.push_back(raw_features[static_cast<std::size_t>(f)]);
  }
  return bundle.scaler.transform_row(selected);
}

int bundle_classify(const ModelBundle& bundle,
                    std::span<const double> raw_features) {
  return bundle.model.predict(bundle_scaled_row(bundle, raw_features));
}

void write_dataset_file(const std::string& path,
                        const DatasetArtifact& artifact) {
  util::ByteWriter out;
  out.varint(artifact.config_digest);
  const ml::Dataset& data = artifact.dataset;
  out.varint(data.feature_names().size());
  for (const std::string& n : data.feature_names()) put_string(out, n);
  out.varint(data.size());
  out.varint(data.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.u8(data.label(i) > 0 ? 1 : 0);
    for (const double v : data.row(i)) out.f64(v);
  }
  write_artifact(path, "SSDS", kDatasetVersion, std::move(out));
}

DatasetArtifact read_dataset_file(const std::string& path) {
  const auto payload = read_artifact(path, "SSDS", kDatasetVersion);
  util::ByteReader in(payload);
  try {
    DatasetArtifact artifact;
    artifact.config_digest = in.varint();
    const std::size_t num_names = in.element_count(1);
    std::vector<std::string> names;
    names.reserve(num_names);
    for (std::size_t i = 0; i < num_names; ++i) names.push_back(get_string(in));
    artifact.dataset = ml::Dataset(std::move(names));
    const std::size_t rows = in.element_count(1);
    // Each feature is one 8-byte double: bound the per-row reserve by the
    // input itself (a crafted count must not drive a huge allocation).
    const std::size_t features = in.element_count(8);
    for (std::size_t i = 0; i < rows; ++i) {
      const int label = in.u8() != 0 ? 1 : -1;
      std::vector<double> row;
      row.reserve(features);
      for (std::size_t f = 0; f < features; ++f) row.push_back(in.f64());
      artifact.dataset.add(std::move(row), label);
    }
    if (!in.at_end()) {
      throw InvalidArgument("trailing bytes after dataset");
    }
    return artifact;
  } catch (const Error& e) {
    throw InvalidArgument("'" + path + "': malformed dataset artifact: " +
                          e.what());
  }
}

}  // namespace ssresf::core
