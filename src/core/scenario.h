#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ml/svm.h"
#include "net/protocol.h"
#include "util/yaml_lite.h"

namespace ssresf::core {

/// Declarative description of one end-to-end SSRESF scenario: the SoC model
/// shape, the record-affecting campaign configuration, and the
/// machine-learning phase knobs. A scenario file fully determines
/// (model, CampaignConfig, SvmConfig, grid, seeds), so the same YAML
/// reproduces byte-identical campaign records, datasets, and trained models
/// on any host — including through the socket transport, whose
/// fi::campaign_config_digest the Session layer cross-checks on every
/// persisted artifact.
///
/// YAML schema (util/yaml_lite subset — block maps, flow lists, scalars):
///
///   scenario: checksum-demo
///   model:
///     workload: checksum          # benchmark | benchmark-light | checksum |
///     isa: RV32I                  #   fibonacci | sort
///     bus: ahb                    # apb | ahb
///     mem_kb: 4
///   campaign:
///     engine: levelized           # event | levelized | bit-parallel
///     seed: 9
///     run_cycles: 0               # 0 = golden run length + margin
///     max_cycles: 1500
///     environment:
///       flux: 5e8
///       let: 37
///     clustering:
///       clusters: 5               # the paper's KN
///       layer_depth: 0            # the paper's LN; 0 = netlist depth
///       max_iterations: 64
///       expand_memory_weight: true
///     sampling:
///       fraction: 0.02
///       min_per_cluster: 6
///       max_per_cluster: 24
///       weighting: mixed          # uniform | xsect | mixed
///       memory_macro_draws: 12
///   ml:
///     kernel: rbf                 # linear | rbf | poly
///     gamma: 1.0
///     degree: 3                   # poly only
///     coef0: 1.0                  # poly only
///     c: 1.0
///     tolerance: 1e-3
///     cv_folds: 5
///     grid_search: true
///     grid_c: [0.5, 1, 4, 16]
///     grid_gamma: [0.05, 0.2, 1, 4]
///     feature_selection: false
///     seed: 7
///   fleet:
///     secret: lab-7                # shared handshake secret ("" = open)
///     connect_timeout: 10          # worker connect retry window, seconds
///     worker_timeout: 120          # coordinator silence reap threshold
///     frame_deadline: 30           # per-frame receive deadline (slow-loris)
///     election_timeout: 0          # seconds before workers self-elect (0 = off)
///     peer_port: 0                 # worker peer-query listener (0 = ephemeral)
///
/// Every section and key is optional (defaults below); unknown keys are
/// rejected with the full key path, so a typo cannot silently fall back to a
/// default and change results.

/// Fleet execution knobs of the distributed transport. Pure execution
/// layer: none of these affect records, so they are NOT part of
/// fi::campaign_config_digest — two fleets with different secrets or
/// timeouts produce byte-identical results.
struct FleetSpec {
  /// Shared secret of the authenticated hello/challenge handshake
  /// (net/auth.h). Empty = open fleet (the MAC is still exchanged, keyed
  /// with the empty secret — one uniform code path).
  std::string secret;
  double connect_timeout = 10.0;
  double worker_timeout = 120.0;
  double frame_deadline = 30.0;
  /// Seconds workers tolerate a vanished coordinator before electing a
  /// replacement from among themselves (net/election.h). 0 disables
  /// elections — losses then end at the reconnect ladder.
  double election_timeout = 0.0;
  /// Fixed port of each worker's peer-query listener (0 = ephemeral). Fix it
  /// when firewalls require known ports; with one worker per host the fleet
  /// can share the value.
  std::uint16_t peer_port = 0;
  /// Host other fleet members should dial for this worker's peer listener
  /// (net::WorkerOptions::advertise_host; --advertise-addr overrides).
  /// Empty = derive from the hello connection (single-host fleets). Setting
  /// it also widens the peer-listener bind beyond loopback. Execution-only
  /// and digest-excluded, like every other fleet knob.
  std::string advertise_addr;
};

struct ScenarioSpec {
  std::string name = "scenario";
  /// Model shape + record-affecting campaign config (the socket transport's
  /// handshake unit — a Session can delegate its simulate stage to
  /// --serve/--connect workers with this spec verbatim).
  net::CampaignSpec campaign;
  ml::SvmConfig svm;
  int cv_folds = 10;
  bool run_grid_search = false;
  std::vector<double> grid_c = {0.5, 1, 4, 16};
  std::vector<double> grid_gamma = {0.05, 0.2, 1.0, 4.0};
  /// Fisher-score feature selection (Fig. 5) before tuning; the chosen
  /// column mask is persisted in the model bundle.
  bool feature_selection = false;
  std::uint64_t ml_seed = 7;
  /// Distributed-fleet execution knobs (never record-affecting).
  FleetSpec fleet;

  /// Parse / serialize. from_yaml throws InvalidArgument naming the exact
  /// offending key path; parse additionally surfaces yaml_lite ParseErrors
  /// (with line numbers) unchanged.
  [[nodiscard]] static ScenarioSpec from_yaml(const util::YamlNode& root);
  [[nodiscard]] static ScenarioSpec parse(std::string_view text);
  [[nodiscard]] static ScenarioSpec load_file(const std::string& path);
  [[nodiscard]] util::YamlNode to_yaml() const;
  [[nodiscard]] std::string dump() const;

  /// Builds the SoC the scenario describes (net::build_model).
  [[nodiscard]] soc::SocModel build_model() const;
};

// --- shared enum <-> name helpers (scenario files and the ssresf CLI) --------
[[nodiscard]] std::string_view engine_name(sim::EngineKind kind);
[[nodiscard]] sim::EngineKind parse_engine_name(std::string_view name);
[[nodiscard]] std::string_view kernel_name(ml::KernelType type);
[[nodiscard]] ml::KernelType parse_kernel_name(std::string_view name);
[[nodiscard]] std::string_view weighting_name(cluster::SampleWeighting w);
[[nodiscard]] cluster::SampleWeighting parse_weighting_name(
    std::string_view name);

}  // namespace ssresf::core
