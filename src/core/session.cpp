#include "core/session.h"

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <utility>

#include "core/features.h"
#include "fi/record_store.h"
#include "fi/shard.h"
#include "ml/feature_selection.h"
#include "net/coordinator.h"
#include "util/timer.h"

namespace ssresf::core {

using netlist::CellId;
using netlist::CellKind;

namespace {

[[nodiscard]] bool file_exists(const std::string& path) {
  std::error_code ignored;
  return std::filesystem::exists(path, ignored);
}

[[nodiscard]] std::string artifact_path(const std::string& dir,
                                        const std::string& name,
                                        const char* extension) {
  return (std::filesystem::path(dir) / (name + extension)).string();
}

void ensure_dir(const std::string& dir) {
  if (dir.empty()) return;
  std::error_code error;
  std::filesystem::create_directories(dir, error);
  if (error) {
    throw Error("cannot create artifact directory '" + dir +
                "': " + error.message());
  }
}

void check_record_format(int record_format) {
  if (record_format != 1 && record_format != 2) {
    throw InvalidArgument("session: record_format must be 1 or 2, got " +
                          std::to_string(record_format));
  }
}

}  // namespace

void write_predictions_csv(const std::string& path, const soc::SocModel& model,
                           const SessionPrediction& prediction) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open '" + path + "' for writing");
  std::fputs("cell,path,module_class,prediction\n", f);
  for (std::size_t i = 0; i < prediction.cells.size(); ++i) {
    const CellId id = prediction.cells[i];
    std::fprintf(
        f, "%u,%s,%s,%d\n", id.index(), model.netlist.cell_path(id).c_str(),
        std::string(netlist::module_class_name(model.netlist.cell_class(id)))
            .c_str(),
        prediction.labels[i]);
  }
  std::fclose(f);
}

Session::Session(ScenarioSpec spec, const radiation::SoftErrorDatabase& database,
                 SessionOptions options)
    : spec_(std::move(spec)),
      db_(database),
      options_(std::move(options)),
      model_(spec_.build_model()),
      model_from_spec_(true),
      digest_(fi::campaign_config_digest(model_, spec_.campaign.config)) {
  check_record_format(options_.record_format);
  ensure_dir(options_.artifact_dir);
}

Session::Session(soc::SocModel model, ScenarioSpec spec,
                 const radiation::SoftErrorDatabase& database,
                 SessionOptions options)
    : spec_(std::move(spec)),
      db_(database),
      options_(std::move(options)),
      model_(std::move(model)),
      model_from_spec_(false),
      digest_(fi::campaign_config_digest(model_, spec_.campaign.config)) {
  check_record_format(options_.record_format);
  ensure_dir(options_.artifact_dir);
}

std::string Session::records_path() const {
  return persists() ? artifact_path(options_.artifact_dir, spec_.name, ".ssfs")
                    : std::string();
}

std::string Session::dataset_path() const {
  return persists() ? artifact_path(options_.artifact_dir, spec_.name, ".ssds")
                    : std::string();
}

std::string Session::model_path() const {
  return persists() ? artifact_path(options_.artifact_dir, spec_.name, ".ssmd")
                    : std::string();
}

void Session::note(std::string_view stage, std::string message) {
  if (options_.progress) {
    options_.progress(
        StageProgress{std::string(stage), 0, 0, std::move(message)});
  }
}

void Session::count(std::string_view stage, std::uint64_t done,
                    std::uint64_t total) {
  if (options_.progress) {
    options_.progress(StageProgress{std::string(stage), done, total, {}});
  }
}

fi::CampaignConfig Session::exec_config() const {
  fi::CampaignConfig config = spec_.campaign.config;
  if (options_.threads != 0) config.threads = options_.threads;
  if (options_.lanes != 0) config.lanes = options_.lanes;
  if (options_.progress) {
    // Forward the campaign's per-injection counter as simulate-stage
    // progress (the campaign may invoke this from its worker threads).
    auto sink = options_.progress;
    config.progress = [sink](std::uint64_t done, std::uint64_t total) {
      sink(StageProgress{"simulate", done, total, {}});
    };
  }
  return config;
}

fi::CampaignResult Session::simulate_served() {
  if (!model_from_spec_) {
    throw InvalidArgument(
        "session: serve delegation requires a scenario-built model (workers "
        "rebuild the SoC from the scenario spec)");
  }
  net::CoordinatorOptions copts;
  copts.port = static_cast<std::uint16_t>(options_.serve_port);
  copts.loopback_only = options_.serve_loopback_only;
  copts.chunk_injections = options_.serve_chunk_injections;
  // The scenario's fleet section carries the execution knobs; the session
  // option overrides only when set explicitly.
  copts.worker_timeout_seconds = options_.worker_timeout_seconds > 0
                                     ? options_.worker_timeout_seconds
                                     : spec_.fleet.worker_timeout;
  copts.frame_deadline_seconds = spec_.fleet.frame_deadline;
  copts.secret = spec_.fleet.secret;
  copts.journal_path = options_.serve_journal;
  net::Coordinator coordinator(spec_.campaign, db_, copts);
  note("simulate", "serving campaign on port " +
                       std::to_string(coordinator.port()));
  if (options_.on_serving) options_.on_serving(coordinator.port());
  fi::CampaignResult result = coordinator.run();
  if (options_.on_fleet_status) {
    options_.on_fleet_status(coordinator.fleet_status());
  }
  return result;
}

const fi::CampaignResult& Session::simulate() {
  if (campaign_) return *campaign_;
  const std::string path = records_path();
  if (persists() && options_.resume && file_exists(path)) {
    // merge_shard_files cross-checks the file's campaign digest and plan
    // coverage: a stale artifact from a different scenario fails loudly here.
    campaign_ = fi::merge_shard_files(model_, spec_.campaign.config, db_, {path});
    note("simulate", "loaded " + std::to_string(campaign_->records.size()) +
                         " campaign records from " + path);
    return *campaign_;
  }
  note("simulate", "started");
  if (options_.serve_port >= 0) {
    campaign_ = simulate_served();
  } else {
    campaign_ = fi::run_campaign(model_, exec_config(), db_);
  }
  persist_records();
  note("simulate", "done: " + std::to_string(campaign_->records.size()) +
                       " injections");
  return *campaign_;
}

void Session::persist_records() {
  if (!persists()) return;
  std::vector<fi::ShardRecord> records;
  records.reserve(campaign_->records.size());
  for (std::size_t i = 0; i < campaign_->records.size(); ++i) {
    records.push_back(fi::ShardRecord{i, campaign_->records[i]});
  }
  fi::ShardFileMeta meta;
  meta.seed = spec_.campaign.config.seed;
  meta.shard_index = 0;
  meta.shard_count = 1;
  meta.total_injections = records.size();
  meta.config_digest = digest_;
  meta.num_records = records.size();
  if (options_.record_format == 2) {
    fi::write_columnar_file(records_path(), meta, records);
  } else {
    fi::write_shard_file(records_path(), meta, records);
  }
  note("simulate", "saved campaign records to " + records_path());
}

void Session::adopt_campaign(fi::CampaignResult campaign) {
  campaign_ = std::move(campaign);
  // The simulate stage changed under the downstream stages: drop them.
  dataset_.reset();
  projected_.reset();
  selected_features_.clear();
  cv_.reset();
  tuned_ = false;
  bundle_.reset();
  prediction_.reset();
  persist_records();
  note("simulate", "adopted " + std::to_string(campaign_->records.size()) +
                       " campaign records");
}

const ml::Dataset& Session::build_dataset() {
  if (dataset_) return *dataset_;
  const std::string path = dataset_path();
  if (persists() && options_.resume && file_exists(path)) {
    DatasetArtifact artifact = read_dataset_file(path);
    if (artifact.config_digest != digest_) {
      throw InvalidArgument(
          "'" + path + "': dataset was built from a different campaign "
          "configuration (digest mismatch); delete it or disable resume to "
          "rebuild");
    }
    dataset_ = std::move(artifact.dataset);
    note("build_dataset", "loaded " + std::to_string(dataset_->size()) +
                              " samples from " + path);
    return *dataset_;
  }
  simulate();
  note("build_dataset", "started");
  dataset_ = core::build_dataset(model_, *campaign_);
  if (persists()) {
    write_dataset_file(path, DatasetArtifact{digest_, *dataset_});
    note("build_dataset", "saved dataset to " + path);
  }
  note("build_dataset",
       "done: " + std::to_string(dataset_->size()) + " samples");
  return *dataset_;
}

const ml::SvmConfig& Session::tune() {
  if (tuned_) return chosen_svm_;
  const ml::Dataset& data = build_dataset();
  note("tune", "started");

  util::Rng ml_rng(spec_.ml_seed);
  // Optional Fisher-score feature selection runs first; with it disabled the
  // fork sequence below is exactly run_pipeline's, so the wrapper stays
  // bit-compatible with the pre-Session pipeline.
  selected_features_.clear();
  if (spec_.feature_selection &&
      data.count_label(1) > 0 && data.count_label(-1) > 0) {
    util::Rng selection_rng = ml_rng.fork();
    const ml::FeatureSelectionResult selection =
        ml::select_features(data, spec_.svm, spec_.cv_folds, selection_rng);
    selected_features_.assign(
        selection.ranked.begin(),
        selection.ranked.begin() + selection.best_count);
    note("tune", "feature selection kept " +
                     std::to_string(selected_features_.size()) + " of " +
                     std::to_string(data.num_features()) + " features");
  } else {
    if (spec_.feature_selection) {
      // Single-class campaign (no soft errors observed): Fisher scores are
      // undefined, so degrade to the identity mask — the same graceful path
      // the SVM and CV take for such datasets.
      note("tune", "feature selection skipped: dataset has a single class");
    }
    selected_features_.resize(data.num_features());
    std::iota(selected_features_.begin(), selected_features_.end(), 0);
  }
  projected_ = data.project(selected_features_);

  chosen_svm_ = spec_.svm;
  if (spec_.run_grid_search) {
    util::Rng grid_rng = ml_rng.fork();
    const ml::GridSearchResult grid =
        ml::grid_search(*projected_, spec_.svm, spec_.grid_c, spec_.grid_gamma,
                        spec_.cv_folds, grid_rng);
    chosen_svm_ = grid.best;
    count("tune", static_cast<std::uint64_t>(grid.grid.size()),
          static_cast<std::uint64_t>(grid.grid.size()));
  }
  util::Rng cv_rng = ml_rng.fork();
  cv_ = ml::cross_validate(*projected_, chosen_svm_, spec_.cv_folds, cv_rng);
  tuned_ = true;
  char accuracy[32];
  std::snprintf(accuracy, sizeof(accuracy), "%.2f%%",
                100.0 * cv_->mean_accuracy);
  note("tune", "done: cv accuracy " + std::string(accuracy));
  return chosen_svm_;
}

const ml::CvResult& Session::cv() const {
  if (!cv_) {
    throw InvalidArgument(
        "session: no cross-validation result (the model stage was resumed "
        "from an artifact or adopted)");
  }
  return *cv_;
}

const ModelBundle& Session::train() {
  if (bundle_) return *bundle_;
  const std::string path = model_path();
  if (persists() && options_.resume && file_exists(path)) {
    ModelBundle bundle = read_model_file(path);
    if (bundle.config_digest != digest_) {
      throw InvalidArgument(
          "'" + path + "': model was trained on a different campaign "
          "configuration (digest mismatch); delete it, disable resume, or "
          "use adopt_model for deliberate cross-netlist transfer");
    }
    chosen_svm_ = bundle.chosen_svm;
    selected_features_ = bundle.selected_features;
    tuned_ = true;
    bundle_ = std::move(bundle);
    note("train", "loaded model bundle from " + path);
    publish_bundle();
    return *bundle_;
  }
  tune();
  note("train", "started");
  util::Timer timer;
  ml::Dataset scaled = *projected_;
  ml::MinMaxScaler scaler;
  scaler.fit_transform(scaled);
  ml::SvmClassifier model(chosen_svm_);
  model.train(scaled);
  train_seconds_ = timer.seconds();

  ModelBundle bundle;
  bundle.config_digest = digest_;
  bundle.scenario_name = spec_.name;
  bundle.chosen_svm = chosen_svm_;
  bundle.model = std::move(model);
  bundle.scaler = std::move(scaler);
  bundle.selected_features = selected_features_;
  bundle.feature_names = node_feature_names();
  bundle.cv_mean_accuracy = cv_->mean_accuracy;
  bundle_ = std::move(bundle);
  if (persists()) {
    write_model_file(path, *bundle_);
    note("train", "saved model bundle to " + path);
  }
  publish_bundle();
  note("train", "done: " +
                    std::to_string(bundle_->model.num_support_vectors()) +
                    " support vectors");
  return *bundle_;
}

void Session::publish_bundle() {
  if (options_.publish_dir.empty()) return;
  ensure_dir(options_.publish_dir);
  const std::string path =
      artifact_path(options_.publish_dir, spec_.name, ".ssmd");
  write_model_file(path, *bundle_);
  note("train", "published model bundle to " + path);
}

void Session::adopt_model(ModelBundle bundle, bool allow_digest_mismatch) {
  if (bundle.config_digest != digest_ && !allow_digest_mismatch) {
    throw InvalidArgument(
        "session: model bundle was trained on a different campaign "
        "configuration (digest mismatch); pass allow_digest_mismatch (CLI: "
        "--cross-netlist) for deliberate transfer to a modified netlist");
  }
  chosen_svm_ = bundle.chosen_svm;
  selected_features_ = bundle.selected_features;
  tuned_ = true;
  cv_.reset();
  prediction_.reset();
  bundle_ = std::move(bundle);
  note("train", "adopted model bundle '" + bundle_->scenario_name + "'");
}

std::vector<double> Session::bundle_row(
    std::span<const double> raw_features) const {
  // Delegates to the shared deployment arithmetic so the serve/ daemon and
  // the offline predict stage cannot drift apart.
  return bundle_scaled_row(*bundle_, raw_features);
}

const SessionPrediction& Session::predict() {
  if (prediction_) return *prediction_;
  train();
  note("predict", "started");
  const FeatureExtractor extractor(model_.netlist);
  SessionPrediction prediction;
  util::Timer timer;
  std::array<std::size_t, netlist::kModuleClassCount> high{};
  std::array<std::size_t, netlist::kModuleClassCount> total{};
  for (const CellId id : model_.netlist.all_cells()) {
    const CellKind kind = model_.netlist.cell(id).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
    const auto features = extractor.extract(id);
    const int label = bundle_->model.predict(bundle_row(features));
    prediction.cells.push_back(id);
    prediction.labels.push_back(label);
    const auto cls = static_cast<std::size_t>(model_.netlist.cell_class(id));
    ++total[cls];
    if (label == 1) ++high[cls];
  }
  prediction.predict_seconds = timer.seconds();
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    prediction.class_percent[c] =
        total[c] > 0 ? 100.0 * static_cast<double>(high[c]) /
                           static_cast<double>(total[c])
                     : 0.0;
  }
  prediction_ = std::move(prediction);
  count("predict", prediction_->cells.size(), prediction_->cells.size());
  note("predict", "done: " + std::to_string(prediction_->cells.size()) +
                      " nodes classified");
  return *prediction_;
}

PipelineResult Session::run_all() {
  simulate();
  // Explicit: a train() resumed from a persisted .ssmd skips the dataset
  // stage, but the assembled PipelineResult carries the dataset — so build
  // (or load) it regardless.
  build_dataset();
  predict();  // chains tune -> train when not resumed

  PipelineResult result;
  result.campaign = *campaign_;
  result.dataset = *dataset_;
  if (cv_) result.cv = *cv_;
  result.chosen_svm = chosen_svm_;
  result.model = bundle_->model;
  result.scaler = bundle_->scaler;
  result.train_seconds = train_seconds_;
  result.predict_seconds = prediction_->predict_seconds;

  // The Fig. 7 SVM series: per-class high-sensitivity fraction over the
  // fault-injection-list nodes (the paper's test dataset), directly
  // comparable to the simulation columns.
  const FeatureExtractor extractor(model_.netlist);
  std::array<std::size_t, netlist::kModuleClassCount> high{};
  std::array<std::size_t, netlist::kModuleClassCount> total{};
  for (const fi::InjectionRecord& record : campaign_->records) {
    const auto cls = static_cast<std::size_t>(record.module_class);
    ++total[cls];
    const auto features = extractor.extract(record.event.target.cell);
    if (bundle_->model.predict(bundle_row(features)) == 1) ++high[cls];
  }
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    result.predicted_class_percent[c] =
        total[c] > 0 ? 100.0 * static_cast<double>(high[c]) /
                           static_cast<double>(total[c])
                     : 0.0;
  }
  return result;
}

}  // namespace ssresf::core
