#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/model_io.h"
#include "core/scenario.h"
#include "core/ssresf.h"

namespace ssresf::core {

/// One progress event from a Session stage. Counted events carry
/// (completed, total); lifecycle events (started / loaded / saved / done)
/// carry a message and leave total at 0.
struct StageProgress {
  std::string stage;  // simulate | build_dataset | tune | train | predict
  std::uint64_t completed = 0;
  std::uint64_t total = 0;  // 0 = indeterminate (lifecycle event)
  std::string message;      // nonempty on lifecycle events
};

struct SessionOptions {
  /// Directory for the stage artifacts (<name>.ssfs / .ssds / .ssmd).
  /// Empty: the session is purely in-memory — nothing is read or written.
  std::string artifact_dir;
  /// Reuse digest-matching artifacts found in artifact_dir instead of
  /// recomputing the stage. An artifact bound to a *different* campaign
  /// digest is rejected loudly (InvalidArgument), never silently recomputed:
  /// stale artifacts must be deleted deliberately.
  bool resume = true;
  /// Simulate-stage workers. 0 (default) inherits the scenario config's
  /// `threads`; < 0 picks hardware threads; > 0 overrides.
  int threads = 0;
  /// Packed-engine lane width for the simulate stage: 64 or 256 overrides,
  /// 0 (default) inherits the scenario config's `lanes`. Execution-only —
  /// records are byte-identical at every width (fi::CampaignConfig::lanes).
  int lanes = 0;
  /// On-disk format of the records artifact (<name>.ssfs): 1 = the flat v1
  /// shard codec, 2 = the chunked columnar v2 store (per-chunk CRC, bounded-
  /// memory read-back). Read side is version-agnostic — resume accepts
  /// either, whatever this is set to. Records are identical in both.
  int record_format = 1;
  /// Progress hook for all five stages. The simulate stage forwards the
  /// campaign's per-injection counter; hooks may be invoked from campaign
  /// worker threads (thread-safe callee required).
  std::function<void(const StageProgress&)> progress;
  /// When nonempty, train() also writes the bundle into this directory as
  /// <scenario>.ssmd (atomically, so a watching serve/ModelRegistry never
  /// sees a torn file) — the "publish into the model registry" hand-off of
  /// `ssresf train --publish DIR`. Applies to freshly trained AND
  /// resume-loaded bundles: re-running train with --publish is the
  /// deliberate way to (re)stage an existing model for serving.
  std::string publish_dir;

  // --- simulate-stage delegation (socket transport) -------------------------
  /// >= 0: simulate() does no local injection work — it serves the scenario's
  /// campaign on this TCP port (0 = ephemeral) and collects records from
  /// --connect workers, exactly like `ssresf_campaign --serve`. Requires a
  /// scenario-built model (the workers rebuild it from the spec and
  /// digest-check it).
  int serve_port = -1;
  bool serve_loopback_only = true;
  std::uint64_t serve_chunk_injections = 0;  // 0 = plan/64
  /// 0 inherits the scenario's fleet.worker_timeout; > 0 overrides it.
  double worker_timeout_seconds = 0.0;
  /// Coordinator dispatch journal (.ssjl) for crash/failover recovery
  /// ("" = none). See net/journal.h.
  std::string serve_journal;
  /// Invoked with the bound port once the coordinator is listening (spawn or
  /// announce workers from here; simulate() then blocks until completion).
  std::function<void(std::uint16_t port)> on_serving;
  /// Invoked with the fleet health table (net::FleetMonitor::status_table)
  /// when a served campaign finishes — `ssresf serve --fleet-status`.
  std::function<void(const std::string&)> on_fleet_status;
};

/// Whole-netlist classification output of the predict stage.
struct SessionPrediction {
  std::vector<netlist::CellId> cells;  // every injectable cell, id order
  std::vector<int> labels;             // +1 / -1 per cell
  /// Percentage of cells predicted highly sensitive per module class.
  std::array<double, netlist::kModuleClassCount> class_percent{};
  double predict_seconds = 0.0;
};

/// Writes the predict-stage output as a deterministic CSV
/// (cell,path,module_class,prediction) — byte-identical for identical
/// models, which is what the CI scenario-equivalence job diffs.
void write_predictions_csv(const std::string& path, const soc::SocModel& model,
                           const SessionPrediction& prediction);

/// The staged SSRESF pipeline (Pipeline API v2). Replaces the one-shot
/// core::run_pipeline with five explicit, resumable stages
///
///   simulate -> build_dataset -> tune -> train -> predict
///
/// each producing a versioned, digest-bound artifact when artifact_dir is
/// set:
///
///   simulate       -> <name>.ssfs  (campaign records, the 1/1-shard codec)
///   build_dataset  -> <name>.ssds  (labeled raw node features)
///   tune + train   -> <name>.ssmd  (SVM + scaler + feature mask + digest)
///
/// Calling any stage runs its missing prerequisites first, so
/// `session.predict()` alone executes the whole flow. With resume on, a
/// stage whose artifact already exists loads it instead (digest
/// cross-checked against fi::campaign_config_digest of this session's
/// (model, config)) — a fresh process can continue exactly where a previous
/// one stopped, or serve predictions from a model trained on another host.
/// All stages are deterministic in (scenario, database), so two sessions of
/// the same scenario produce bit-identical artifacts and predictions on any
/// host, with any thread count, and through any simulate-stage transport.
class Session {
 public:
  /// Builds the SoC from the scenario's model section.
  Session(ScenarioSpec spec, const radiation::SoftErrorDatabase& database,
          SessionOptions options = {});
  /// Uses a caller-provided model (the run_pipeline compatibility path).
  /// Serve delegation is unavailable: workers could not rebuild this model.
  Session(soc::SocModel model, ScenarioSpec spec,
          const radiation::SoftErrorDatabase& database,
          SessionOptions options = {});

  [[nodiscard]] const ScenarioSpec& scenario() const { return spec_; }
  [[nodiscard]] const soc::SocModel& model() const { return model_; }
  /// fi::campaign_config_digest of this session — the binding every
  /// artifact carries.
  [[nodiscard]] std::uint64_t config_digest() const { return digest_; }

  // --- stages ----------------------------------------------------------------
  const fi::CampaignResult& simulate();
  const ml::Dataset& build_dataset();
  /// Feature selection (optional) + grid search + cross-validation; returns
  /// the chosen hyper-parameters.
  const ml::SvmConfig& tune();
  const ModelBundle& train();
  const SessionPrediction& predict();

  /// All five stages; assembles the classic PipelineResult (cv is empty when
  /// the model stage was resumed from a .ssmd rather than tuned here).
  [[nodiscard]] PipelineResult run_all();

  // --- introspection ---------------------------------------------------------
  [[nodiscard]] bool has_campaign() const { return campaign_.has_value(); }
  [[nodiscard]] bool has_dataset() const { return dataset_.has_value(); }
  [[nodiscard]] bool has_model() const { return bundle_.has_value(); }
  [[nodiscard]] bool has_cv() const { return cv_.has_value(); }
  /// Valid after tune() (not after a train() resumed from disk).
  [[nodiscard]] const ml::CvResult& cv() const;

  /// Installs simulate-stage output produced elsewhere (e.g. `ssresf merge`
  /// over distributed shard files) and persists it as this session's
  /// records artifact. Downstream stage state is reset.
  void adopt_campaign(fi::CampaignResult campaign);

  /// Installs a model trained elsewhere (the `ssresf predict` path). A
  /// bundle bound to a different campaign digest is rejected with
  /// InvalidArgument unless `allow_digest_mismatch` — the deliberate
  /// cross-netlist transfer of the paper's deployment story (train on one
  /// SoC, classify a modified one).
  void adopt_model(ModelBundle bundle, bool allow_digest_mismatch = false);

  // --- artifact paths (empty when artifact_dir is empty) ---------------------
  [[nodiscard]] std::string records_path() const;
  [[nodiscard]] std::string dataset_path() const;
  [[nodiscard]] std::string model_path() const;

 private:
  [[nodiscard]] bool persists() const { return !options_.artifact_dir.empty(); }
  [[nodiscard]] fi::CampaignConfig exec_config() const;
  void note(std::string_view stage, std::string message);
  void count(std::string_view stage, std::uint64_t done, std::uint64_t total);
  [[nodiscard]] fi::CampaignResult simulate_served();
  void persist_records();
  void publish_bundle();
  [[nodiscard]] std::vector<double> bundle_row(
      std::span<const double> raw_features) const;

  ScenarioSpec spec_;
  const radiation::SoftErrorDatabase& db_;
  SessionOptions options_;
  soc::SocModel model_;
  bool model_from_spec_ = false;
  std::uint64_t digest_ = 0;

  std::optional<fi::CampaignResult> campaign_;
  std::optional<ml::Dataset> dataset_;    // raw labeled features
  std::optional<ml::Dataset> projected_;  // after the selection mask
  std::vector<int> selected_features_;
  std::optional<ml::CvResult> cv_;
  ml::SvmConfig chosen_svm_;
  bool tuned_ = false;
  std::optional<ModelBundle> bundle_;
  std::optional<SessionPrediction> prediction_;
  double train_seconds_ = 0.0;
};

}  // namespace ssresf::core
