#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.h"
#include "ml/scaler.h"
#include "ml/svm.h"

namespace ssresf::core {

/// On-disk artifacts of the staged Session pipeline. Both files share the
/// framing of the campaign formats: a 4-byte magic, a version byte, and an
/// FNV-1a digest of the payload, so truncation or corruption fails loudly on
/// load instead of decoding into a silently different model. All doubles
/// travel as raw IEEE-754 words — a reloaded model produces bit-identical
/// decision values, and a reloaded dataset trains a bit-identical model.

/// The trained-model bundle (`.ssmd`): everything needed to serve
/// sensitivity predictions without re-running a single simulation — the
/// paper's "train once, classify any netlist" deployment artifact.
struct ModelBundle {
  /// fi::campaign_config_digest of the campaign the model was trained on.
  /// Binds predictions to their training scenario; Session::adopt_model
  /// rejects a mismatch unless cross-netlist transfer is explicitly allowed.
  std::uint64_t config_digest = 0;
  std::string scenario_name;
  ml::SvmConfig chosen_svm;  // after the tune stage (grid search)
  ml::SvmClassifier model;   // trained on the full scaled dataset
  ml::MinMaxScaler scaler;   // fitted on the selected feature columns
  /// Feature-column mask applied to raw FeatureExtractor rows before
  /// scaling/prediction (Fisher-selection order; identity when selection is
  /// off).
  std::vector<int> selected_features;
  std::vector<std::string> feature_names;  // raw extractor column names
  double cv_mean_accuracy = 0.0;           // tune-stage estimate, for reports
};

void write_model_file(const std::string& path, const ModelBundle& bundle);
[[nodiscard]] ModelBundle read_model_file(const std::string& path);

/// Applies the bundle's feature mask to one raw FeatureExtractor row and
/// scales it into model space. Throws InvalidArgument when the mask does not
/// fit the row. This (with bundle_classify below) is THE deployment
/// arithmetic: Session::predict and the serve/ prediction daemon both call
/// it, which is what makes a served prediction bit-identical to the offline
/// one.
[[nodiscard]] std::vector<double> bundle_scaled_row(
    const ModelBundle& bundle, std::span<const double> raw_features);

/// Mask + scale + SVM sign for one raw feature row. Returns +1 / -1.
[[nodiscard]] int bundle_classify(const ModelBundle& bundle,
                                  std::span<const double> raw_features);

/// The labeled-dataset artifact (`.ssds`): raw (unscaled) node features plus
/// +1/-1 sensitivity labels, digest-bound to the campaign that produced it.
/// Sufficient on its own to resume a Session at the tune stage.
struct DatasetArtifact {
  std::uint64_t config_digest = 0;
  ml::Dataset dataset;
};

void write_dataset_file(const std::string& path, const DatasetArtifact& artifact);
[[nodiscard]] DatasetArtifact read_dataset_file(const std::string& path);

}  // namespace ssresf::core
