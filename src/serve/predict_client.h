#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/socket.h"

namespace ssresf::serve {

/// Outcome of one batched predict round trip, transport-agnostic: the SSNP
/// and HTTP clients fill the same struct, which is how the CI
/// serving-equivalence job byte-diffs the two fronts against each other and
/// against offline `ssresf predict`.
struct PredictResult {
  std::vector<int> labels;          // +1 / -1 per request row
  std::string alias;                // alias of the bundle that answered
  std::uint64_t config_digest = 0;  // digest of the bundle that answered
  std::uint64_t generation = 0;     // registry generation that answered
};

/// Batched prediction over the SSNP front: one kPredictRequest frame per
/// predict() call on a persistent connection. A kError reply (unknown
/// alias, digest mismatch, bad shape) throws with the server's message.
class PredictClient {
 public:
  PredictClient(const std::string& host, std::uint16_t port,
                double connect_timeout_seconds = 10.0);

  /// `expect_digest` 0 skips the digest cross-check (deliberate
  /// cross-netlist transfer); nonzero makes the server refuse a bundle
  /// trained on any other campaign. An empty `alias` with a nonzero digest
  /// resolves the model by digest instead.
  [[nodiscard]] PredictResult predict(
      const std::string& alias, std::uint64_t expect_digest,
      const std::vector<std::vector<double>>& rows);

 private:
  util::Socket socket_;
};

/// The same round trip over the HTTP/1.1 JSON front (POST /v1/predict) on a
/// persistent keep-alive connection. Feature values travel as %.17g JSON
/// numbers, which round-trip doubles bit-exactly — HTTP predictions are
/// byte-diffable against the SSNP and offline paths.
class HttpPredictClient {
 public:
  HttpPredictClient(const std::string& host, std::uint16_t port,
                    double connect_timeout_seconds = 10.0);

  [[nodiscard]] PredictResult predict(
      const std::string& alias, std::uint64_t expect_digest,
      const std::vector<std::vector<double>>& rows);

 private:
  std::string host_;
  util::Socket socket_;
  std::string buf_;  // carry-over between keep-alive responses
};

}  // namespace ssresf::serve
