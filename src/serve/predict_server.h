#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "net/protocol.h"
#include "serve/registry.h"
#include "util/socket.h"
#include "util/thread_pool.h"

namespace ssresf::serve {

/// A refused predict batch (unknown alias, digest mismatch, bad shape).
/// `http_status` is how the HTTP front reports it; the SSNP front sends the
/// message in a kError frame. Always loud, never a silent wrong answer.
class RequestError : public Error {
 public:
  RequestError(int http_status, const std::string& what)
      : Error(what), http_status_(http_status) {}
  [[nodiscard]] int http_status() const noexcept { return http_status_; }

 private:
  int http_status_;
};

struct PredictServerOptions {
  /// Directory of `.ssmd` bundles the registry serves. Required.
  std::string models_dir;
  /// TCP ports of the two fronts: 0 = ephemeral (read back via
  /// ssnp_port()/http_port()), -1 = front disabled.
  int ssnp_port = 0;
  int http_port = 0;
  bool loopback_only = true;
  /// Connection-handler pool size; <= 0 picks hardware threads (min 4).
  int threads = 0;
  /// Seconds between registry rescans (hot reload); <= 0 disables the
  /// watcher — tests then drive reloads via registry().refresh().
  double reload_interval_seconds = 1.0;
  /// Optional log-line sink (stderr in the CLI, captured in tests).
  std::function<void(const std::string&)> log;
};

/// The prediction daemon behind `ssresf model-serve`: one warm request core
/// (resolve alias -> digest cross-check -> mask+scale+classify through
/// core::bundle_classify, the exact offline arithmetic) shared by two
/// fronts — batched kPredictRequest/kPredictResponse frames on the SSNP
/// protocol, and a minimal HTTP/1.1 JSON endpoint (POST /v1/predict,
/// GET /healthz, GET /v1/models). Connections are handled on a
/// util::ThreadPool; a background watcher hot-reloads rewritten bundles
/// (in-flight requests finish on the generation they resolved). stop() is a
/// graceful drain: listeners close first, idle connections are released at
/// their next poll tick, mid-request connections finish and answer.
class PredictServer {
 public:
  explicit PredictServer(PredictServerOptions options);
  ~PredictServer();

  PredictServer(const PredictServer&) = delete;
  PredictServer& operator=(const PredictServer&) = delete;

  /// Bound port of a front, 0 when that front is disabled.
  [[nodiscard]] std::uint16_t ssnp_port() const;
  [[nodiscard]] std::uint16_t http_port() const;
  [[nodiscard]] ModelRegistry& registry() { return registry_; }

  /// Starts the accept loop and reload watcher. Returns immediately.
  void start();
  /// Graceful drain; idempotent, implied by the destructor.
  void stop();
  [[nodiscard]] bool draining() const { return stop_.load(); }

  /// The shared request core (also what both fronts call): resolves
  /// `alias` (empty alias + nonzero digest resolves by digest), enforces
  /// the digest cross-check, classifies every row, and folds the outcome
  /// into the per-model metrics. Throws RequestError on refusal.
  [[nodiscard]] net::PredictResponseMsg handle_batch(
      const net::PredictRequestMsg& request);

  /// Per-model request/latency counters as an ASCII table (--stats).
  [[nodiscard]] std::string stats_table() const;

 private:
  void log_line(const std::string& line) const;
  void accept_loop();
  void watch_loop();
  void serve_ssnp(util::Socket socket);
  void serve_http(util::Socket socket);
  [[nodiscard]] std::string models_json() const;
  [[nodiscard]] std::string handle_http_predict(const std::string& body);

  PredictServerOptions options_;
  ModelRegistry registry_;
  std::optional<util::ListenSocket> ssnp_listener_;
  std::optional<util::ListenSocket> http_listener_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread accept_thread_;
  std::thread watch_thread_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  mutable std::mutex mu_;
  std::condition_variable watch_cv_;  // wakes the watcher early on stop()
  std::mutex stop_mu_;                // serializes stop() callers
  bool stopped_ = false;
};

}  // namespace ssresf::serve
