#include "serve/predict_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "serve/http.h"
#include "util/table.h"
#include "util/timer.h"

namespace ssresf::serve {

namespace {

/// Poll granularity of every blocking loop in the daemon: the longest a
/// drain can wait for an *idle* connection or listener to notice stop().
constexpr int kPollMs = 100;

/// Once a frame or request has started arriving, the rest of it must land
/// within this long — the slow-loris bound that keeps a stalled client from
/// pinning a drain forever.
constexpr double kFrameDeadlineSeconds = 30.0;

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

PredictServer::PredictServer(PredictServerOptions options)
    : options_(std::move(options)), registry_(options_.models_dir) {
  const std::size_t loaded = registry_.refresh();
  for (const auto& [path, error] : registry_.load_errors()) {
    log_line("model-serve: skipping '" + path + "': " + error);
  }
  log_line("model-serve: " + std::to_string(loaded) + " model(s) loaded from " +
           options_.models_dir);
  if (options_.ssnp_port >= 0) {
    ssnp_listener_.emplace(static_cast<std::uint16_t>(options_.ssnp_port),
                           options_.loopback_only);
  }
  if (options_.http_port >= 0) {
    http_listener_.emplace(static_cast<std::uint16_t>(options_.http_port),
                           options_.loopback_only);
  }
  if (!ssnp_listener_ && !http_listener_) {
    throw InvalidArgument("model-serve: both fronts are disabled");
  }
  const int threads = options_.threads > 0
                          ? options_.threads
                          : std::max(4, util::ThreadPool::hardware_threads());
  pool_ = std::make_unique<util::ThreadPool>(threads);
}

PredictServer::~PredictServer() { stop(); }

std::uint16_t PredictServer::ssnp_port() const {
  return ssnp_listener_ ? ssnp_listener_->port() : 0;
}

std::uint16_t PredictServer::http_port() const {
  return http_listener_ ? http_listener_->port() : 0;
}

void PredictServer::log_line(const std::string& line) const {
  if (options_.log) options_.log(line);
}

void PredictServer::start() {
  if (started_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  if (options_.reload_interval_seconds > 0.0) {
    watch_thread_ = std::thread([this] { watch_loop(); });
  }
}

void PredictServer::stop() {
  // Drain order matters: close the doors (listeners) first, then wait for
  // everyone inside to finish. The pool destructor runs every queued and
  // in-flight connection handler to completion, and those handlers poll
  // stop_ between requests — so an in-flight request always gets its
  // answer, while idle keep-alive connections are released at the next
  // poll tick.
  const std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true);
  watch_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (watch_thread_.joinable()) watch_thread_.join();
  if (ssnp_listener_) ssnp_listener_->close();
  if (http_listener_) http_listener_->close();
  pool_.reset();
  log_line("model-serve: drained");
}

void PredictServer::accept_loop() {
  std::vector<int> fds;
  if (ssnp_listener_) fds.push_back(ssnp_listener_->fd());
  if (http_listener_) fds.push_back(http_listener_->fd());
  while (!stop_.load()) {
    const std::vector<bool> ready = util::poll_readable(fds, kPollMs);
    if (stop_.load()) break;
    std::size_t slot = 0;
    if (ssnp_listener_) {
      if (ready[slot++]) {
        auto socket = std::make_shared<util::Socket>(ssnp_listener_->accept());
        pool_->submit([this, socket] { serve_ssnp(std::move(*socket)); });
      }
    }
    if (http_listener_) {
      if (ready[slot]) {
        auto socket = std::make_shared<util::Socket>(http_listener_->accept());
        pool_->submit([this, socket] { serve_http(std::move(*socket)); });
      }
    }
  }
}

void PredictServer::watch_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load()) {
    watch_cv_.wait_for(
        lock, std::chrono::duration<double>(options_.reload_interval_seconds),
        [this] { return stop_.load(); });
    if (stop_.load()) break;
    lock.unlock();
    try {
      const std::uint64_t before = registry_.generation();
      registry_.refresh();
      if (registry_.generation() != before) {
        log_line("model-serve: registry now at generation " +
                 std::to_string(registry_.generation()));
      }
      for (const auto& [path, error] : registry_.load_errors()) {
        log_line("model-serve: skipping '" + path + "': " + error);
      }
    } catch (const std::exception& e) {
      log_line(std::string("model-serve: reload failed: ") + e.what());
    }
    lock.lock();
  }
}

net::PredictResponseMsg PredictServer::handle_batch(
    const net::PredictRequestMsg& request) {
  util::Timer timer;
  const std::string stats_alias =
      request.alias.empty() ? hex64(request.config_digest) : request.alias;
  std::shared_ptr<const ServedModel> entry;
  try {
    entry = request.alias.empty()
                ? registry_.find_by_digest(request.config_digest)
                : registry_.find(request.alias);
    if (!entry) {
      throw RequestError(
          404, request.alias.empty()
                   ? "no served model with config digest " +
                         hex64(request.config_digest)
                   : "no served model with alias '" + request.alias + "'");
    }
    if (request.config_digest != 0 &&
        entry->bundle->config_digest != request.config_digest) {
      // The loud digest refusal: answering anyway could silently classify
      // one netlist with another netlist's model.
      throw RequestError(
          409, "config digest mismatch: request expects " +
                   hex64(request.config_digest) + " but served bundle '" +
                   entry->alias + "' was trained on " +
                   hex64(entry->bundle->config_digest) +
                   " (re-publish the bundle, or send digest 0 for deliberate "
                   "cross-netlist transfer)");
    }
    net::PredictResponseMsg response;
    response.alias = entry->alias;
    response.config_digest = entry->bundle->config_digest;
    response.generation = entry->generation;
    response.labels.reserve(request.rows.size());
    for (const std::vector<double>& row : request.rows) {
      try {
        response.labels.push_back(core::bundle_classify(*entry->bundle, row));
      } catch (const Error& e) {
        throw RequestError(400, e.what());
      }
    }
    registry_.record_request(stats_alias, request.rows.size(),
                            timer.seconds(), /*ok=*/true);
    return response;
  } catch (const RequestError&) {
    registry_.record_request(stats_alias, 0, timer.seconds(), /*ok=*/false);
    throw;
  }
}

void PredictServer::serve_ssnp(util::Socket socket) {
  try {
    while (true) {
      // Poll-gated read: an idle connection re-checks stop_ every tick, so
      // a drain never waits on a client that has nothing to say.
      if (!socket.wait_readable(kPollMs)) {
        if (stop_.load()) break;
        continue;
      }
      net::Frame frame;
      if (!net::recv_frame_deadline(socket, frame, kFrameDeadlineSeconds)) {
        break;  // clean close
      }
      if (frame.type != net::MsgType::kPredictRequest) {
        const net::ErrorMsg err{
            "model-serve: unexpected frame type " +
            std::to_string(static_cast<int>(frame.type)) +
            " (this port only answers kPredictRequest)"};
        net::send_frame(socket, net::MsgType::kError,
                        net::encode_payload(err));
        continue;
      }
      try {
        util::ByteReader reader(frame.payload);
        const auto request = net::PredictRequestMsg::decode(reader);
        if (!reader.at_end()) {
          throw InvalidArgument("predict request: trailing payload bytes");
        }
        const net::PredictResponseMsg response = handle_batch(request);
        net::send_frame(socket, net::MsgType::kPredictResponse,
                        net::encode_payload(response));
      } catch (const Error& e) {
        // A refused or malformed batch is answered in-band; the framing is
        // still in sync, so the connection survives for the next batch.
        const net::ErrorMsg err{std::string("model-serve: ") + e.what()};
        net::send_frame(socket, net::MsgType::kError,
                        net::encode_payload(err));
      }
    }
  } catch (const std::exception& e) {
    // Unframeable garbage or a mid-frame disconnect: drop the connection,
    // never the daemon.
    log_line(std::string("model-serve: ssnp connection dropped: ") + e.what());
  }
}

std::string PredictServer::models_json() const {
  std::string out = "{\"generation\":" +
                    std::to_string(registry_.generation()) + ",\"models\":[";
  bool first = true;
  for (const auto& entry : registry_.list()) {
    const ModelStats stats = registry_.stats(entry->alias);
    if (!first) out += ",";
    first = false;
    out += "{\"alias\":" + json_quote(entry->alias);
    out += ",\"digest\":" + json_quote(hex64(entry->bundle->config_digest));
    out += ",\"generation\":" + std::to_string(entry->generation);
    out += ",\"scenario\":" + json_quote(entry->bundle->scenario_name);
    out += ",\"features\":" +
           std::to_string(entry->bundle->feature_names.size());
    out += ",\"selected_features\":" +
           std::to_string(entry->bundle->selected_features.size());
    out += ",\"cv_accuracy\":" + json_number(entry->bundle->cv_mean_accuracy);
    out += ",\"requests\":" + std::to_string(stats.requests);
    out += ",\"rows\":" + std::to_string(stats.rows);
    out += ",\"errors\":" + std::to_string(stats.errors);
    out += ",\"seconds\":" + json_number(stats.total_seconds);
    out += "}";
  }
  out += "],\"load_errors\":[";
  first = true;
  for (const auto& [path, error] : registry_.load_errors()) {
    if (!first) out += ",";
    first = false;
    out += "{\"path\":" + json_quote(path) +
           ",\"error\":" + json_quote(error) + "}";
  }
  out += "]}\n";
  return out;
}

std::string PredictServer::handle_http_predict(const std::string& body) {
  JsonValue doc;
  try {
    doc = parse_json(body);
  } catch (const Error& e) {
    throw HttpError(400, e.what());
  }
  if (!doc.is_object()) {
    throw HttpError(400, "predict body must be a JSON object");
  }
  net::PredictRequestMsg request;
  if (const JsonValue* model = doc.get("model")) {
    if (!model->is_string()) {
      throw HttpError(400, "\"model\" must be a string alias");
    }
    request.alias = model->string;
  }
  if (const JsonValue* digest = doc.get("digest")) {
    if (!digest->is_string()) {
      throw HttpError(400,
                      "\"digest\" must be a hex string (64-bit digests do "
                      "not fit JSON numbers)");
    }
    const std::string& s = digest->string;
    char* end = nullptr;
    request.config_digest = std::strtoull(s.c_str(), &end, 16);
    if (s.empty() || end != s.c_str() + s.size()) {
      throw HttpError(400, "\"digest\" is not a hex string: " + s);
    }
  }
  const JsonValue* rows = doc.get("rows");
  if (rows == nullptr || !rows->is_array()) {
    throw HttpError(400, "\"rows\" must be an array of feature rows");
  }
  if (rows->array.size() > net::kMaxPredictRows) {
    throw HttpError(413, "predict batch exceeds the row cap");
  }
  request.rows.reserve(rows->array.size());
  for (const JsonValue& row : rows->array) {
    if (!row.is_array()) {
      throw HttpError(400, "\"rows\" must contain arrays of numbers");
    }
    std::vector<double> values;
    values.reserve(row.array.size());
    for (const JsonValue& v : row.array) {
      if (!v.is_number()) {
        throw HttpError(400, "feature values must be numbers");
      }
      values.push_back(v.number);
    }
    if (!request.rows.empty() && values.size() != request.rows.front().size()) {
      throw HttpError(400, "ragged feature rows");
    }
    request.rows.push_back(std::move(values));
  }
  request.num_rows = request.rows.size();
  request.num_features =
      request.rows.empty() ? 0 : request.rows.front().size();

  net::PredictResponseMsg response;
  try {
    response = handle_batch(request);
  } catch (const RequestError& e) {
    throw HttpError(e.http_status(), e.what());
  }
  std::string out = "{\"model\":" + json_quote(response.alias);
  out += ",\"digest\":" + json_quote(hex64(response.config_digest));
  out += ",\"generation\":" + std::to_string(response.generation);
  out += ",\"labels\":[";
  for (std::size_t i = 0; i < response.labels.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(response.labels[i]);
  }
  out += "]}\n";
  return out;
}

void PredictServer::serve_http(util::Socket socket) {
  HttpConnection conn(std::move(socket));
  try {
    while (true) {
      if (!conn.socket().wait_readable(kPollMs)) {
        if (stop_.load()) break;
        continue;
      }
      HttpRequest request;
      try {
        if (!conn.read_request(request)) break;  // clean close
      } catch (const HttpError& e) {
        // Malformed head or body: answer if the socket still can, then
        // drop the connection — its byte stream is beyond recovery.
        conn.respond(e.status(),
                     "application/json",
                     "{\"error\":" + json_quote(e.what()) + "}\n",
                     /*keep_alive=*/false);
        break;
      }
      // Draining: answer this request, then close.
      const bool keep_alive = request.keep_alive && !stop_.load();
      try {
        if (request.target == "/healthz") {
          if (request.method != "GET") throw HttpError(405, "GET only");
          conn.respond(200, "text/plain", "ok\n", keep_alive);
        } else if (request.target == "/v1/models") {
          if (request.method != "GET") throw HttpError(405, "GET only");
          conn.respond(200, "application/json", models_json(), keep_alive);
        } else if (request.target == "/v1/predict") {
          if (request.method != "POST") throw HttpError(405, "POST only");
          conn.respond(200, "application/json",
                       handle_http_predict(request.body), keep_alive);
        } else {
          throw HttpError(404, "unknown endpoint '" + request.target + "'");
        }
      } catch (const HttpError& e) {
        conn.respond(e.status(), "application/json",
                     "{\"error\":" + json_quote(e.what()) + "}\n", keep_alive);
      }
      if (!keep_alive) break;
    }
  } catch (const std::exception& e) {
    log_line(std::string("model-serve: http connection dropped: ") + e.what());
  }
}

std::string PredictServer::stats_table() const {
  util::Table table({"model", "requests", "rows", "errors", "avg ms"});
  for (const auto& [alias, stats] : registry_.all_stats()) {
    const double avg_ms =
        stats.requests > 0
            ? 1000.0 * stats.total_seconds /
                  static_cast<double>(stats.requests)
            : 0.0;
    char avg[32];
    std::snprintf(avg, sizeof(avg), "%.3f", avg_ms);
    table.add_row({alias, std::to_string(stats.requests),
                   std::to_string(stats.rows), std::to_string(stats.errors),
                   avg});
  }
  return table.render();
}

}  // namespace ssresf::serve
