#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/model_io.h"

namespace ssresf::serve {

/// Cumulative serving counters for one model alias. Owned by the registry
/// and preserved across hot reloads — a model swap must not reset the
/// alias's traffic history.
struct ModelStats {
  std::uint64_t requests = 0;       // accepted predict batches
  std::uint64_t rows = 0;           // feature rows classified
  std::uint64_t errors = 0;         // refused batches (digest/shape/alias)
  double total_seconds = 0.0;       // summed request service time
};

/// One loaded `.ssmd` bundle, warm and immutable. The registry hands these
/// out as shared_ptr<const ServedModel>: an in-flight request keeps
/// classifying against the generation it resolved, even while a hot reload
/// swaps the alias to a newer bundle — old generations die when the last
/// request drops its reference, never under it.
struct ServedModel {
  std::string alias;                // file stem of the bundle in models/
  std::string path;
  std::uint64_t generation = 0;     // registry-global, bumps per (re)load
  std::shared_ptr<const core::ModelBundle> bundle;
};

/// Warm, versioned model registry over a directory of `.ssmd` bundles
/// ("the models/ dir"). Aliases are file stems; each bundle is also
/// addressable by its campaign-config digest. refresh() rescans the
/// directory: a new or rewritten file is decoded once (through the same
/// core/model_io loader the offline CLI uses) and published under a new
/// generation; a vanished file retires its alias; a file that fails to
/// decode is recorded in load_errors() and — crucially — leaves any
/// previously served generation of that alias untouched. All methods are
/// thread-safe.
class ModelRegistry {
 public:
  explicit ModelRegistry(std::string models_dir);

  /// Rescans the directory. Returns how many bundles were (re)loaded.
  std::size_t refresh();

  [[nodiscard]] std::shared_ptr<const ServedModel> find(
      const std::string& alias) const;
  /// Any served bundle with this campaign-config digest (newest generation
  /// wins when several match); nullptr when none does.
  [[nodiscard]] std::shared_ptr<const ServedModel> find_by_digest(
      std::uint64_t config_digest) const;
  /// All served models, alias order.
  [[nodiscard]] std::vector<std::shared_ptr<const ServedModel>> list() const;

  /// Monotonic counter, bumped once per (re)loaded bundle. A client that
  /// saw generation G in a response can detect a hot swap by polling this.
  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Folds one request outcome into the alias's counters.
  void record_request(const std::string& alias, std::uint64_t rows,
                      double seconds, bool ok);
  [[nodiscard]] ModelStats stats(const std::string& alias) const;
  /// (alias, stats) snapshot for every alias ever served, alias order.
  [[nodiscard]] std::vector<std::pair<std::string, ModelStats>> all_stats()
      const;

  /// Decode failures from the most recent refresh(), as (path, error).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> load_errors()
      const;

  /// THE `.ssmd` loader: reads and decodes `path` through core/model_io,
  /// memoized process-wide by (canonical path, mtime, size) so repeated
  /// loads of an unchanged file share one warm immutable bundle. Both the
  /// registry's refresh() and the offline `ssresf predict` path go through
  /// here — one load implementation, one cache. Throws on a missing or
  /// malformed file.
  [[nodiscard]] static std::shared_ptr<const core::ModelBundle> load_file(
      const std::string& path);

 private:
  struct FileSig {
    std::int64_t mtime_ns = 0;
    std::uint64_t size = 0;
    bool operator==(const FileSig&) const = default;
  };

  std::string dir_;
  mutable std::mutex mu_;
  std::uint64_t generation_ = 0;
  std::map<std::string, std::shared_ptr<const ServedModel>> by_alias_;
  std::map<std::string, FileSig> sigs_;  // alias -> on-disk identity
  std::map<std::string, ModelStats> stats_;
  std::vector<std::pair<std::string, std::string>> errors_;
};

}  // namespace ssresf::serve
