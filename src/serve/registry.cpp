#include "serve/registry.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <system_error>

#include "util/error.h"

namespace ssresf::serve {

namespace fs = std::filesystem;

namespace {

struct StatResult {
  std::int64_t mtime_ns = 0;
  std::uint64_t size = 0;
};

/// (mtime, size) identity of a regular file; nullopt when it is missing or
/// not a regular file.
std::optional<StatResult> stat_file(const fs::path& path) {
  std::error_code ec;
  if (!fs::is_regular_file(path, ec) || ec) return std::nullopt;
  const auto mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto size = fs::file_size(path, ec);
  if (ec) return std::nullopt;
  StatResult r;
  r.mtime_ns = static_cast<std::int64_t>(
      mtime.time_since_epoch().count());
  r.size = size;
  return r;
}

struct CacheEntry {
  std::int64_t mtime_ns = 0;
  std::uint64_t size = 0;
  std::shared_ptr<const core::ModelBundle> bundle;
};

std::mutex& cache_mutex() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, CacheEntry>& cache() {
  static std::map<std::string, CacheEntry> entries;
  return entries;
}

}  // namespace

std::shared_ptr<const core::ModelBundle> ModelRegistry::load_file(
    const std::string& path) {
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(path, ec);
  if (ec) canonical = path;
  const auto sig = stat_file(canonical);
  if (!sig) throw Error("cannot open model bundle '" + path + "'");
  const std::string key = canonical.string();
  {
    std::lock_guard<std::mutex> lock(cache_mutex());
    const auto it = cache().find(key);
    if (it != cache().end() && it->second.mtime_ns == sig->mtime_ns &&
        it->second.size == sig->size) {
      return it->second.bundle;
    }
  }
  // Decode outside the cache lock: a slow load must not serialize every
  // other model behind it.
  auto bundle =
      std::make_shared<const core::ModelBundle>(core::read_model_file(key));
  std::lock_guard<std::mutex> lock(cache_mutex());
  cache()[key] = CacheEntry{sig->mtime_ns, sig->size, bundle};
  return bundle;
}

ModelRegistry::ModelRegistry(std::string models_dir)
    : dir_(std::move(models_dir)) {
  if (dir_.empty()) {
    throw InvalidArgument("model registry: models directory must be set");
  }
}

std::size_t ModelRegistry::refresh() {
  // Scan first, decode outside the registry lock, publish under it — a slow
  // bundle decode must never block concurrent find() calls.
  std::vector<std::pair<std::string, fs::path>> present;  // alias, path
  std::error_code ec;
  for (fs::directory_iterator it(dir_, ec), end; !ec && it != end;
       it.increment(ec)) {
    const fs::path& p = it->path();
    if (p.extension() != ".ssmd") continue;
    present.emplace_back(p.stem().string(), p);
  }
  if (ec) {
    throw Error("model registry: cannot scan '" + dir_ + "': " + ec.message());
  }
  std::sort(present.begin(), present.end());

  std::vector<std::pair<std::string, std::string>> errors;
  std::size_t loaded = 0;
  std::map<std::string, FileSig> new_sigs;
  std::map<std::string, std::shared_ptr<ServedModel>> fresh;
  for (const auto& [alias, path] : present) {
    const auto sig = stat_file(path);
    if (!sig) continue;  // vanished between scan and stat
    const FileSig file_sig{sig->mtime_ns, sig->size};
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = sigs_.find(alias);
      if (it != sigs_.end() && it->second == file_sig) {
        new_sigs[alias] = file_sig;  // unchanged: keep the served entry
        continue;
      }
    }
    try {
      auto bundle = load_file(path.string());
      auto entry = std::make_shared<ServedModel>();
      entry->alias = alias;
      entry->path = path.string();
      entry->bundle = std::move(bundle);
      fresh[alias] = std::move(entry);
      new_sigs[alias] = file_sig;
      ++loaded;
    } catch (const std::exception& e) {
      // A bundle that fails to decode is reported, but an already-serving
      // generation of the alias keeps answering — a bad publish must not
      // take a live model down.
      errors.emplace_back(path.string(), e.what());
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = sigs_.find(alias);
      if (it != sigs_.end()) new_sigs[alias] = it->second;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [alias, entry] : fresh) {
    entry->generation = ++generation_;
    by_alias_[alias] = std::move(entry);
  }
  // Retire aliases whose file vanished (present set no longer names them).
  for (auto it = by_alias_.begin(); it != by_alias_.end();) {
    if (new_sigs.find(it->first) == new_sigs.end()) {
      it = by_alias_.erase(it);
      ++generation_;
    } else {
      ++it;
    }
  }
  sigs_ = std::move(new_sigs);
  errors_ = std::move(errors);
  return loaded;
}

std::shared_ptr<const ServedModel> ModelRegistry::find(
    const std::string& alias) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_alias_.find(alias);
  return it != by_alias_.end() ? it->second : nullptr;
}

std::shared_ptr<const ServedModel> ModelRegistry::find_by_digest(
    std::uint64_t config_digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const ServedModel> best;
  for (const auto& [alias, entry] : by_alias_) {
    if (entry->bundle->config_digest != config_digest) continue;
    if (!best || entry->generation > best->generation) best = entry;
  }
  return best;
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(by_alias_.size());
  for (const auto& [alias, entry] : by_alias_) out.push_back(entry);
  return out;
}

std::uint64_t ModelRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void ModelRegistry::record_request(const std::string& alias,
                                   std::uint64_t rows, double seconds,
                                   bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  ModelStats& s = stats_[alias];
  if (ok) {
    ++s.requests;
    s.rows += rows;
  } else {
    ++s.errors;
  }
  s.total_seconds += seconds;
}

ModelStats ModelRegistry::stats(const std::string& alias) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = stats_.find(alias);
  return it != stats_.end() ? it->second : ModelStats{};
}

std::vector<std::pair<std::string, ModelStats>> ModelRegistry::all_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {stats_.begin(), stats_.end()};
}

std::vector<std::pair<std::string, std::string>> ModelRegistry::load_errors()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_;
}

}  // namespace ssresf::serve
