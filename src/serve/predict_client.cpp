#include "serve/predict_client.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "net/protocol.h"
#include "serve/http.h"
#include "util/bytes.h"
#include "util/error.h"

namespace ssresf::serve {

namespace {

net::PredictRequestMsg make_request(
    const std::string& alias, std::uint64_t expect_digest,
    const std::vector<std::vector<double>>& rows) {
  net::PredictRequestMsg request;
  request.alias = alias;
  request.config_digest = expect_digest;
  request.num_rows = rows.size();
  request.num_features = rows.empty() ? 0 : rows.front().size();
  request.rows = rows;
  return request;
}

void check_labels(const PredictResult& result, std::size_t rows) {
  if (result.labels.size() != rows) {
    throw Error("predict client: server answered " +
                std::to_string(result.labels.size()) + " labels for " +
                std::to_string(rows) + " rows");
  }
}

}  // namespace

PredictClient::PredictClient(const std::string& host, std::uint16_t port,
                             double connect_timeout_seconds)
    : socket_(util::connect_to(host, port, connect_timeout_seconds)) {}

PredictResult PredictClient::predict(
    const std::string& alias, std::uint64_t expect_digest,
    const std::vector<std::vector<double>>& rows) {
  const net::PredictRequestMsg request =
      make_request(alias, expect_digest, rows);
  net::send_frame(socket_, net::MsgType::kPredictRequest,
                  net::encode_payload(request));
  net::Frame frame;
  if (!net::recv_frame(socket_, frame)) {
    throw Error("predict client: server closed the connection mid-request");
  }
  if (frame.type == net::MsgType::kError) {
    util::ByteReader reader(frame.payload);
    throw Error(net::ErrorMsg::decode(reader).message);
  }
  if (frame.type != net::MsgType::kPredictResponse) {
    throw Error("predict client: unexpected frame type " +
                std::to_string(static_cast<int>(frame.type)));
  }
  util::ByteReader reader(frame.payload);
  const auto response = net::PredictResponseMsg::decode(reader);
  PredictResult result;
  result.labels = response.labels;
  result.alias = response.alias;
  result.config_digest = response.config_digest;
  result.generation = response.generation;
  check_labels(result, rows.size());
  return result;
}

HttpPredictClient::HttpPredictClient(const std::string& host,
                                     std::uint16_t port,
                                     double connect_timeout_seconds)
    : host_(host),
      socket_(util::connect_to(host, port, connect_timeout_seconds)) {}

namespace {

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Reads one Content-Length-framed response, carrying pipelined bytes in
/// `buf` between keep-alive calls.
HttpResponse read_response(util::Socket& socket, std::string& buf) {
  std::size_t head_end = std::string::npos;
  while ((head_end = buf.find("\r\n\r\n")) == std::string::npos) {
    if (buf.size() > kMaxHttpHeaderBytes) {
      throw Error("predict client: oversized response head");
    }
    char chunk[4096];
    const std::size_t n = socket.recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      throw Error("predict client: server closed the connection mid-response");
    }
    buf.append(chunk, n);
  }
  const std::string head = buf.substr(0, head_end);
  buf.erase(0, head_end + 4);

  HttpResponse response;
  // Status line: HTTP/1.1 SP code SP reason
  const std::size_t sp1 = head.find(' ');
  if (sp1 == std::string::npos || head.size() < sp1 + 4) {
    throw Error("predict client: malformed response status line");
  }
  response.status = std::atoi(head.c_str() + sp1 + 1);
  std::size_t content_length = 0;
  std::size_t pos = head.find("\r\n");
  while (pos != std::string::npos && pos + 2 < head.size()) {
    std::size_t next = head.find("\r\n", pos + 2);
    const std::string line =
        head.substr(pos + 2, (next == std::string::npos ? head.size() : next) -
                                 pos - 2);
    pos = next;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string name = line.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (name == "content-length") {
      std::string value = line.substr(colon + 1);
      const std::size_t start = value.find_first_not_of(" \t");
      value = start == std::string::npos ? "" : value.substr(start);
      const auto [p, ec] = std::from_chars(
          value.data(), value.data() + value.size(), content_length);
      if (ec != std::errc()) {
        throw Error("predict client: malformed content-length");
      }
    }
  }
  if (content_length > kMaxHttpBodyBytes) {
    throw Error("predict client: oversized response body");
  }
  const std::size_t from_buf = std::min(content_length, buf.size());
  response.body.assign(buf, 0, from_buf);
  buf.erase(0, from_buf);
  while (response.body.size() < content_length) {
    char chunk[4096];
    const std::size_t want =
        std::min(content_length - response.body.size(), sizeof(chunk));
    const std::size_t n = socket.recv_some(chunk, want);
    if (n == 0) {
      throw Error("predict client: server closed the connection mid-response");
    }
    response.body.append(chunk, n);
  }
  return response;
}

}  // namespace

PredictResult HttpPredictClient::predict(
    const std::string& alias, std::uint64_t expect_digest,
    const std::vector<std::vector<double>>& rows) {
  std::string body = "{";
  bool first_field = true;
  if (!alias.empty()) {
    body += "\"model\":" + json_quote(alias);
    first_field = false;
  }
  if (expect_digest != 0) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(expect_digest));
    if (!first_field) body += ",";
    body += "\"digest\":" + json_quote(hex);
    first_field = false;
  }
  if (!first_field) body += ",";
  body += "\"rows\":[";
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) body += ",";
    body += "[";
    for (std::size_t f = 0; f < rows[r].size(); ++f) {
      if (f > 0) body += ",";
      body += json_number(rows[r][f]);
    }
    body += "]";
  }
  body += "]}";

  std::string request = "POST /v1/predict HTTP/1.1\r\n";
  request += "Host: " + host_ + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "\r\n";
  request += body;
  socket_.send_all(request.data(), request.size());

  const HttpResponse response = read_response(socket_, buf_);
  JsonValue doc;
  try {
    doc = parse_json(response.body);
  } catch (const Error&) {
    doc = JsonValue{};
  }
  if (response.status != 200) {
    const JsonValue* error = doc.get("error");
    throw Error(error != nullptr && error->is_string()
                    ? error->string
                    : "predict client: HTTP " +
                          std::to_string(response.status));
  }
  const JsonValue* labels = doc.get("labels");
  if (labels == nullptr || !labels->is_array()) {
    throw Error("predict client: response has no \"labels\" array");
  }
  PredictResult result;
  result.labels.reserve(labels->array.size());
  for (const JsonValue& v : labels->array) {
    if (!v.is_number()) {
      throw Error("predict client: non-numeric label in response");
    }
    result.labels.push_back(v.number > 0 ? 1 : -1);
  }
  if (const JsonValue* model = doc.get("model"); model && model->is_string()) {
    result.alias = model->string;
  }
  if (const JsonValue* digest = doc.get("digest");
      digest && digest->is_string()) {
    result.config_digest = std::strtoull(digest->string.c_str(), nullptr, 16);
  }
  if (const JsonValue* gen = doc.get("generation");
      gen && gen->is_number()) {
    result.generation = static_cast<std::uint64_t>(gen->number);
  }
  check_labels(result, rows.size());
  return result;
}

}  // namespace ssresf::serve
