#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"
#include "util/socket.h"

namespace ssresf::serve {

/// Minimal dependency-free HTTP/1.1 server-side support for the prediction
/// daemon's JSON front. Deliberately small: request-line + headers +
/// Content-Length bodies, keep-alive, nothing else (no chunked encoding, no
/// TLS, no compression) — enough for `curl` and the HttpPredictClient.

/// A malformed or oversized request. `status` is the HTTP status the server
/// should answer with before dropping the connection.
class HttpError : public Error {
 public:
  HttpError(int status, const std::string& what)
      : Error(what), status_(status) {}
  [[nodiscard]] int status() const noexcept { return status_; }

 private:
  int status_;
};

struct HttpRequest {
  std::string method;   // as sent (GET, POST, ...)
  std::string target;   // origin-form, e.g. /v1/predict
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;
  bool keep_alive = true;
};

/// Hard caps on one request: a header block or body beyond these is hostile
/// or lost, not a prediction batch.
inline constexpr std::size_t kMaxHttpHeaderBytes = 64 * 1024;
inline constexpr std::size_t kMaxHttpBodyBytes = 64 * 1024 * 1024;

/// One HTTP connection: owns the socket plus the read buffer that carries
/// pipelined bytes between keep-alive requests.
class HttpConnection {
 public:
  explicit HttpConnection(util::Socket socket) : socket_(std::move(socket)) {}

  [[nodiscard]] util::Socket& socket() { return socket_; }

  /// Reads one full request. Returns false on a clean end-of-stream before
  /// the first byte (the client hung up between requests). Throws HttpError
  /// on a malformed or oversized request, util Error on a mid-request
  /// disconnect.
  [[nodiscard]] bool read_request(HttpRequest& out);

  /// Writes one response with Content-Length framing.
  void respond(int status, std::string_view content_type,
               std::string_view body, bool keep_alive);

 private:
  util::Socket socket_;
  std::string buf_;
};

[[nodiscard]] std::string_view http_status_text(int status);

// --- JSON --------------------------------------------------------------------

/// A parsed JSON value. Numbers are doubles (parse/print round-trips them
/// bit-exactly via %.17g), which is all the predict body needs; 64-bit
/// digests travel as hex strings, never as JSON numbers.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  /// Object member or nullptr.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;
};

/// Parses one JSON document (must consume the whole input). Throws
/// InvalidArgument on malformed JSON or nesting deeper than 64 levels.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// `s` as a quoted JSON string literal.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest-round-trip rendering of a double as a JSON number token.
[[nodiscard]] std::string json_number(double v);

}  // namespace ssresf::serve
