#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ssresf::serve {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::string_view http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

bool HttpConnection::read_request(HttpRequest& out) {
  out = HttpRequest{};
  // Accumulate until the header terminator, carrying over any bytes a
  // previous keep-alive request left behind.
  std::size_t head_end = std::string::npos;
  while ((head_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    if (buf_.size() > kMaxHttpHeaderBytes) {
      throw HttpError(431, "http: request header block exceeds " +
                               std::to_string(kMaxHttpHeaderBytes) + " bytes");
    }
    char chunk[4096];
    const std::size_t n = socket_.recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      if (buf_.empty()) return false;  // clean close between requests
      throw HttpError(400, "http: connection closed inside a request head");
    }
    buf_.append(chunk, n);
  }
  const std::string head = buf_.substr(0, head_end);
  buf_.erase(0, head_end + 4);

  // Request line: METHOD SP target SP HTTP/x.y
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    throw HttpError(400, "http: malformed request line");
  }
  out.method = line.substr(0, sp1);
  out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  if (out.method.empty() || out.target.empty() || out.target[0] != '/') {
    throw HttpError(400, "http: malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    throw HttpError(505, "http: unsupported version '" + version + "'");
  }

  // Header fields, names lowercased.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string_view field(head.data() + pos, next - pos);
    pos = next + 2;
    if (field.empty()) continue;
    const std::size_t colon = field.find(':');
    if (colon == std::string_view::npos) {
      throw HttpError(400, "http: malformed header field");
    }
    out.headers[lower(std::string(trim(field.substr(0, colon))))] =
        std::string(trim(field.substr(colon + 1)));
  }

  const bool http11 = version == "HTTP/1.1";
  out.keep_alive = http11;
  if (const auto it = out.headers.find("connection");
      it != out.headers.end()) {
    const std::string value = lower(it->second);
    if (value.find("close") != std::string::npos) out.keep_alive = false;
    if (!http11 && value.find("keep-alive") != std::string::npos) {
      out.keep_alive = true;
    }
  }

  if (out.headers.count("transfer-encoding") != 0) {
    throw HttpError(501, "http: transfer-encoding is not supported");
  }
  std::size_t content_length = 0;
  if (const auto it = out.headers.find("content-length");
      it != out.headers.end()) {
    const std::string& v = it->second;
    const auto [p, ec] =
        std::from_chars(v.data(), v.data() + v.size(), content_length);
    if (ec != std::errc() || p != v.data() + v.size()) {
      throw HttpError(400, "http: malformed content-length '" + v + "'");
    }
  }
  if (content_length > kMaxHttpBodyBytes) {
    throw HttpError(413, "http: request body of " +
                             std::to_string(content_length) +
                             " bytes exceeds the cap");
  }

  // Body: drain the carry-over first, then the socket.
  const std::size_t from_buf = std::min(content_length, buf_.size());
  out.body.assign(buf_, 0, from_buf);
  buf_.erase(0, from_buf);
  while (out.body.size() < content_length) {
    char chunk[4096];
    const std::size_t want =
        std::min(content_length - out.body.size(), sizeof(chunk));
    const std::size_t n = socket_.recv_some(chunk, want);
    if (n == 0) {
      throw HttpError(400, "http: connection closed inside a request body");
    }
    out.body.append(chunk, n);
  }
  return true;
}

void HttpConnection::respond(int status, std::string_view content_type,
                             std::string_view body, bool keep_alive) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     std::string(http_status_text(status)) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  head += "\r\n";
  socket_.send_all(head.data(), head.size());
  if (!body.empty()) socket_.send_all(body.data(), body.size());
}

// --- JSON --------------------------------------------------------------------

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it != object.end() ? &it->second : nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("json: " + what + " (at byte " +
                          std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string_token();
        skip_ws();
        expect(':');
        v.object[std::move(key)] = parse_value(depth + 1);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.array.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string_token();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.kind = JsonValue::Kind::kNumber;
      const char* begin = text_.data() + pos_;
      const char* end = text_.data() + text_.size();
      const auto [p, ec] = std::from_chars(begin, end, v.number);
      if (ec != std::errc()) fail("malformed number");
      pos_ += static_cast<std::size_t>(p - begin);
      return v;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("malformed \\u escape");
      }
    }
    return value;
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate
            expect('\\');
            expect('u');
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += hex;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) {
    throw InvalidArgument("json: non-finite numbers are not representable");
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace ssresf::serve
