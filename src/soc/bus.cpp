#include "soc/bus.h"

#include "util/error.h"

namespace ssresf::soc {

std::string_view bus_protocol_name(BusProtocol p) {
  switch (p) {
    case BusProtocol::kApb:
      return "APB";
    case BusProtocol::kAhb:
      return "AHB";
    case BusProtocol::kAxi:
      return "AXI";
  }
  return "?";
}

namespace {

/// Spread an xlen-bit word across `width` lanes (rotating copies), through
/// buffers so the lanes are real cells, not aliases.
Bus spread_lanes(Builder& b, const Bus& word, int width) {
  Bus lanes;
  lanes.reserve(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    lanes.push_back(b.buf(word[static_cast<std::size_t>(k) % word.size()]));
  }
  return lanes;
}

/// Select the lane group addressed by `group_sel` and collapse back to xlen.
Bus collapse_lanes(Builder& b, const Bus& lanes, const Bus& group_sel,
                   int xlen) {
  const int groups = static_cast<int>(lanes.size()) / xlen;
  std::vector<Bus> options;
  options.reserve(static_cast<std::size_t>(groups));
  for (int g = 0; g < groups; ++g) {
    options.push_back(slice(lanes, g * xlen, xlen));
  }
  if (groups == 1) return options[0];
  return bus_mux_tree(b, group_sel, options);
}

}  // namespace

BusSegmentIO build_bus_segment(Builder& b, BusProtocol protocol,
                               int fabric_width, NetId clk, NetId rstn,
                               const CoreIO& core, int xlen,
                               const Bus& dmem_rdata, const Bus& dmem_raddr,
                               const Bus& dmem_waddr, const Bus& dmem_wdata,
                               NetId dmem_we, const std::string& name) {
  if (fabric_width % xlen != 0) {
    throw InvalidArgument("bus fabric width must be a multiple of xlen");
  }
  const int groups = fabric_width / xlen;
  int group_bits = 0;
  while ((1 << group_bits) < groups) ++group_bits;
  const int woff = xlen == 64 ? 3 : 2;  // byte -> word address shift
  const int abits = static_cast<int>(dmem_raddr.size());

  const auto scope = b.scope(name, netlist::ModuleClass::kBus);

  // --- address decode ----------------------------------------------------------
  const NetId is_mmio = core.data_addr[30];
  const NetId is_dmem = b.inv(is_mmio);
  const Bus word_addr = slice(core.data_addr, woff, abits);
  const Bus group_sel =
      group_bits > 0 ? slice(word_addr, 0, group_bits) : Bus{};

  // --- write lane fabric ----------------------------------------------------------
  const Bus wlanes = spread_lanes(b, core.data_wdata, fabric_width);
  const NetId store_req = b.and2(core.data_we, is_dmem);

  Bus commit_wdata;   // xlen bits handed to the memory write port
  Bus commit_waddr;   // abits
  NetId commit_we;
  NetId fwd_hit = b.zero();
  Bus fwd_data;

  switch (protocol) {
    case BusProtocol::kApb: {
      // Direct write: commits on the edge ending the store cycle.
      commit_we = store_req;
      commit_waddr = word_addr;
      commit_wdata = collapse_lanes(b, wlanes, group_sel, xlen);
      break;
    }
    case BusProtocol::kAhb: {
      // One posted stage: address-phase/data-phase registers.
      const Bus lane_q = b.register_bus(wlanes, clk, rstn, "ahb_lane");
      const Bus waddr_q = b.register_bus(word_addr, clk, rstn, "ahb_waddr");
      const NetId we_q = b.dffr(store_req, clk, rstn, "ahb_we").q;
      commit_we = we_q;
      commit_waddr = waddr_q;
      const Bus commit_group =
          group_bits > 0 ? slice(waddr_q, 0, group_bits) : Bus{};
      commit_wdata = collapse_lanes(b, lane_q, commit_group, xlen);
      fwd_hit = b.and2(we_q, equal(b, waddr_q, word_addr));
      fwd_data = commit_wdata;
      break;
    }
    case BusProtocol::kAxi: {
      // Two stages: AW/W channel registers, then the commit stage.
      const Bus lane1 = b.register_bus(wlanes, clk, rstn, "axi_w1");
      const Bus addr1 = b.register_bus(word_addr, clk, rstn, "axi_aw1");
      const NetId we1 = b.dffr(store_req, clk, rstn, "axi_v1").q;
      const Bus lane2 = b.register_bus(lane1, clk, rstn, "axi_w2");
      const Bus addr2 = b.register_bus(addr1, clk, rstn, "axi_aw2");
      const NetId we2 = b.dffr(we1, clk, rstn, "axi_v2").q;
      commit_we = we2;
      commit_waddr = addr2;
      const Bus g2 = group_bits > 0 ? slice(addr2, 0, group_bits) : Bus{};
      commit_wdata = collapse_lanes(b, lane2, g2, xlen);
      // Forwarding: newest store wins.
      const Bus g1 = group_bits > 0 ? slice(addr1, 0, group_bits) : Bus{};
      const Bus data1 = collapse_lanes(b, lane1, g1, xlen);
      const NetId hit1 = b.and2(we1, equal(b, addr1, word_addr));
      const NetId hit2 = b.and2(we2, equal(b, addr2, word_addr));
      fwd_hit = b.or2(hit1, hit2);
      fwd_data = bus_mux(b, hit1, commit_wdata, data1);
      break;
    }
    default:
      throw InvalidArgument("unknown bus protocol");
  }

  b.drive_bus(dmem_waddr, commit_waddr);
  b.drive_bus(dmem_wdata, commit_wdata);
  b.drive(dmem_we, commit_we);
  b.drive_bus(dmem_raddr, word_addr);

  // --- read lane fabric + forwarding ------------------------------------------------
  const Bus rlanes = spread_lanes(b, dmem_rdata, fabric_width);
  Bus rdata = collapse_lanes(b, rlanes, group_sel, xlen);
  if (protocol != BusProtocol::kApb) {
    rdata = bus_mux(b, fwd_hit, rdata, fwd_data);
  }

  BusSegmentIO io;
  io.rdata_to_core = std::move(rdata);
  io.is_mmio = is_mmio;
  io.mmio_we = b.and2(core.data_we, is_mmio);
  io.mmio_wdata = slice(core.data_wdata, 0, 32);
  return io;
}

}  // namespace ssresf::soc
