#include "soc/alu.h"

#include "util/error.h"

namespace ssresf::soc {

Bus build_alu(Builder& b, const Bus& a, const Bus& bb, const Bus& op_sel) {
  if (a.size() != bb.size()) throw InvalidArgument("alu operand width mismatch");
  if (op_sel.size() != kAluOpBits) {
    throw InvalidArgument("alu op select must be kAluOpBits wide");
  }
  const int w = static_cast<int>(a.size());
  int shamt_bits = 0;
  while ((1 << shamt_bits) < w) ++shamt_bits;
  const Bus shamt = slice(bb, 0, shamt_bits);

  const auto scope = b.scope("alu");

  const Bus sum = add(b, a, bb);
  const Bus diff = subtract(b, a, bb).sum;
  const Bus and_r = bus_and(b, a, bb);
  const Bus or_r = bus_or(b, a, bb);
  const Bus xor_r = bus_xor(b, a, bb);
  const NetId lt_s = less_signed(b, a, bb);
  const NetId lt_u = less_unsigned(b, a, bb);
  Bus slt = bus_constant(b, w, 0);
  slt[0] = lt_s;
  Bus sltu = bus_constant(b, w, 0);
  sltu[0] = lt_u;
  const Bus sll = shift_left(b, a, shamt);
  const Bus srl = shift_right(b, a, shamt, b.zero());
  const Bus sra = shift_right(b, a, shamt, a.back());

  const Bus options[kNumAluOps] = {sum, diff, and_r, or_r,  xor_r, slt,
                                   sltu, sll, srl,  sra, bb};
  return bus_mux_tree(b, op_sel, options);
}

}  // namespace ssresf::soc
