#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "soc/assembler.h"
#include "soc/bus.h"
#include "soc/core.h"

namespace ssresf::soc {

/// One row of the paper's Table I benchmark axis: a PULP-style SoC
/// configuration (memory technology/size, bus protocol/width, CPU ISA and
/// core count).
struct SocConfig {
  std::string name;                // e.g. "PULP SoC1"
  netlist::MemTech mem_tech = netlist::MemTech::kSram;
  std::uint64_t mem_bytes = 64 * 1024;  // total data memory, split per core
  BusProtocol bus = BusProtocol::kApb;
  int bus_width_bits = 32;         // fabric lane count (>= xlen)
  std::string cpu_isa = "RV32I";
  int num_cores = 1;
  std::uint32_t imem_words = 1024;  // per-core instruction memory

  [[nodiscard]] std::string mem_size_string() const;
};

/// The 10 SoC compositions evaluated in the paper (Table I rows).
[[nodiscard]] std::vector<SocConfig> pulp_soc_table();

/// A built SoC: the gate-level netlist plus the handles the fault-injection
/// campaign and testbench need.
struct SocModel {
  netlist::Netlist netlist;
  SocConfig config;
  int xlen = 32;
  netlist::NetId clk;
  netlist::NetId rstn;
  /// Monitored primary outputs: halt, out_valid, out_core, out_data[0..31].
  std::vector<netlist::NetId> monitored;
  std::vector<netlist::CellId> imem_cells;  // per core
  std::vector<netlist::CellId> dmem_cells;  // per core
};

/// Builds a SoC running `programs[i]` on core i (a single program is
/// replicated across cores when fewer are given than num_cores).
[[nodiscard]] SocModel build_soc(const SocConfig& config,
                                 std::span<const Program> programs);

}  // namespace ssresf::soc
