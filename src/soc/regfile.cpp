#include "soc/regfile.h"

#include "util/error.h"

namespace ssresf::soc {

std::vector<Bus> build_register_file(Builder& b, NetId clk, NetId rstn,
                                     NetId we, const Bus& rd_sel,
                                     const Bus& wdata,
                                     std::span<const Bus> read_sels,
                                     bool reg0_is_zero,
                                     const std::string& name) {
  const auto scope = b.scope(name);
  const std::size_t num_regs = std::size_t{1} << rd_sel.size();
  const int width = static_cast<int>(wdata.size());

  const std::vector<NetId> select = decode(b, rd_sel);
  std::vector<Bus> regs;
  regs.reserve(num_regs);
  for (std::size_t r = 0; r < num_regs; ++r) {
    if (r == 0 && reg0_is_zero) {
      regs.push_back(bus_constant(b, width, 0));
      continue;
    }
    const NetId wen = b.and2(we, select[r]);
    regs.push_back(
        b.register_bus_en(wdata, clk, rstn, wen, "x" + std::to_string(r)));
  }

  std::vector<Bus> reads;
  reads.reserve(read_sels.size());
  for (const Bus& sel : read_sels) {
    if (sel.size() != rd_sel.size()) {
      throw InvalidArgument("regfile read select width mismatch");
    }
    reads.push_back(bus_mux_tree(b, sel, regs));
  }
  return reads;
}

}  // namespace ssresf::soc
