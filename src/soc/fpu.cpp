#include "soc/fpu.h"

#include "util/error.h"

namespace ssresf::soc {

namespace {

struct Unpacked {
  NetId sign;
  Bus exp;       // exp_bits
  Bus mant;      // man_bits + 1 (hidden bit at top)
  NetId is_zero; // exponent == 0 (subnormals treated as zero)
};

Unpacked unpack(Builder& b, const Bus& v, const FpFormat& fmt) {
  Unpacked u;
  u.sign = v[static_cast<std::size_t>(fmt.width() - 1)];
  u.exp = slice(v, fmt.man_bits, fmt.exp_bits);
  u.is_zero = is_zero(b, u.exp);
  u.mant = slice(v, 0, fmt.man_bits);
  u.mant.push_back(b.inv(u.is_zero));  // hidden 1 for normals
  return u;
}

Bus pack(Builder& b, NetId sign, const Bus& exp, const Bus& mant_no_hidden,
         NetId zero, const FpFormat& fmt) {
  Bus out;
  out.reserve(static_cast<std::size_t>(fmt.width()));
  const NetId not_zero = b.inv(zero);
  for (int i = 0; i < fmt.man_bits; ++i) {
    out.push_back(b.and2(mant_no_hidden[static_cast<std::size_t>(i)], not_zero));
  }
  for (int i = 0; i < fmt.exp_bits; ++i) {
    out.push_back(b.and2(exp[static_cast<std::size_t>(i)], not_zero));
  }
  out.push_back(b.and2(sign, not_zero));
  return out;
}

}  // namespace

Bus build_fp_adder(Builder& b, const Bus& a, const Bus& c, FpFormat fmt) {
  if (a.size() != static_cast<std::size_t>(fmt.width()) || a.size() != c.size()) {
    throw InvalidArgument("fp adder operand width mismatch");
  }
  const auto scope = b.scope("fpadd");
  const Unpacked ua = unpack(b, a, fmt);
  const Unpacked uc = unpack(b, c, fmt);

  // Order operands by magnitude: compare {exp, mant} as one unsigned word.
  const Bus mag_a = concat(ua.mant, ua.exp);
  const Bus mag_c = concat(uc.mant, uc.exp);
  const NetId a_smaller = less_unsigned(b, mag_a, mag_c);
  const NetId sign_big = b.mux2(a_smaller, ua.sign, uc.sign);
  const NetId sign_small = b.mux2(a_smaller, uc.sign, ua.sign);
  const Bus exp_big = bus_mux(b, a_smaller, ua.exp, uc.exp);
  const Bus exp_small = bus_mux(b, a_smaller, uc.exp, ua.exp);
  const Bus mant_big = bus_mux(b, a_smaller, ua.mant, uc.mant);
  const Bus mant_small = bus_mux(b, a_smaller, uc.mant, ua.mant);

  // Working mantissas: two guard bits below, hidden bit at the top.
  const int mw = fmt.man_bits + 3;
  auto widen = [&](const Bus& mant) {
    Bus out;
    out.push_back(b.zero());
    out.push_back(b.zero());
    out.insert(out.end(), mant.begin(), mant.end());
    return out;  // width mw
  };
  const Bus big_w = widen(mant_big);
  const Bus exp_diff = subtract(b, exp_big, exp_small).sum;
  const Bus small_aligned = shift_right(b, widen(mant_small), exp_diff, b.zero());

  // Add or subtract depending on sign agreement.
  const NetId effective_sub = b.xor2(sign_big, sign_small);
  const Bus big_ext = zero_extend(b, big_w, mw + 1);
  const Bus small_ext = zero_extend(b, small_aligned, mw + 1);
  const Bus sum_add = add(b, big_ext, small_ext);
  const Bus sum_sub = subtract(b, big_ext, small_ext).sum;
  const Bus raw = bus_mux(b, effective_sub, sum_add, sum_sub);

  // Normalize: bring the leading 1 to the top bit (position mw) and adjust
  // the exponent: new_exp = exp_big + 1 - shift_amount.
  const NormalizeResult norm = normalize_left(b, raw);
  const NetId result_zero_mag = norm.amount.back();  // raw sum was zero
  const Bus mant_out =
      slice(norm.value, mw + 1 - (fmt.man_bits + 1), fmt.man_bits);

  const int ew = fmt.exp_bits + 2;  // room for overflow/underflow detection
  const Bus exp_big_ext = zero_extend(b, exp_big, ew);
  const Bus one_ext = bus_constant(b, ew, 1);
  Bus amount_only = norm.amount;
  amount_only.pop_back();  // strip the all-zero flag, keep the shift count
  const Bus shift_ext = zero_extend(b, amount_only, ew);
  const Bus exp_plus1 = add(b, exp_big_ext, one_ext);
  const AddResult exp_adj = subtract(b, exp_plus1, shift_ext);
  const NetId exp_underflow = b.inv(exp_adj.carry);  // went negative
  const NetId exp_nonpos = is_zero(b, slice(exp_adj.sum, 0, fmt.exp_bits));

  const NetId result_zero = b.or_reduce(std::vector<NetId>{
      result_zero_mag, exp_underflow, exp_nonpos,
      b.and2(ua.is_zero, uc.is_zero)});
  // Either input zero: pass the other operand through unchanged.
  const Bus exp_out = slice(exp_adj.sum, 0, fmt.exp_bits);
  Bus packed = pack(b, sign_big, exp_out, mant_out, result_zero, fmt);
  packed = bus_mux(b, ua.is_zero, packed, c);
  packed = bus_mux(b, uc.is_zero, packed, a);
  const NetId both_zero = b.and2(ua.is_zero, uc.is_zero);
  packed = bus_mux(b, both_zero, packed,
                   bus_constant(b, fmt.width(), 0));
  return packed;
}

Bus build_fp_multiplier(Builder& b, const Bus& a, const Bus& c, FpFormat fmt) {
  if (a.size() != static_cast<std::size_t>(fmt.width()) || a.size() != c.size()) {
    throw InvalidArgument("fp multiplier operand width mismatch");
  }
  const auto scope = b.scope("fpmul");
  const Unpacked ua = unpack(b, a, fmt);
  const Unpacked uc = unpack(b, c, fmt);
  const NetId sign = b.xor2(ua.sign, uc.sign);
  const NetId any_zero = b.or2(ua.is_zero, uc.is_zero);

  // Mantissa product: (1.m_a) * (1.m_c), 2*(man_bits+1) bits; the leading 1
  // lands in one of the top two bit positions.
  const Bus product = multiply(b, ua.mant, uc.mant);
  const int pw = static_cast<int>(product.size());
  const NetId top = product[static_cast<std::size_t>(pw - 1)];
  // If top bit set: mantissa = product[pw-2 .. pw-1-man_bits], exp += 1.
  const Bus mant_hi = slice(product, pw - 1 - fmt.man_bits, fmt.man_bits);
  const Bus mant_lo = slice(product, pw - 2 - fmt.man_bits, fmt.man_bits);
  const Bus mant_out = bus_mux(b, top, mant_lo, mant_hi);

  const int ew = fmt.exp_bits + 2;
  const Bus ea = zero_extend(b, ua.exp, ew);
  const Bus ec = zero_extend(b, uc.exp, ew);
  const Bus bias = bus_constant(b, ew, static_cast<std::uint64_t>(fmt.bias()));
  Bus exp_sum = add(b, ea, ec);
  Bus top_ext = bus_constant(b, ew, 0);
  top_ext[0] = top;
  exp_sum = add(b, exp_sum, top_ext);
  const AddResult exp_adj = subtract(b, exp_sum, bias);
  const NetId underflow = b.inv(exp_adj.carry);
  const NetId exp_nonpos = is_zero(b, slice(exp_adj.sum, 0, fmt.exp_bits));
  const NetId overflow = exp_adj.sum[static_cast<std::size_t>(fmt.exp_bits)];

  const NetId result_zero =
      b.or_reduce(std::vector<NetId>{any_zero, underflow, exp_nonpos});
  Bus exp_out = slice(exp_adj.sum, 0, fmt.exp_bits);
  // Saturate the exponent on overflow (documented: no inf/NaN).
  exp_out = bus_mux(b, overflow, exp_out,
                    bus_constant(b, fmt.exp_bits, ~std::uint64_t{0}));
  return pack(b, sign, exp_out, mant_out, result_zero, fmt);
}

}  // namespace ssresf::soc
