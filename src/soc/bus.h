#pragma once

#include "soc/core.h"

namespace ssresf::soc {

/// Interconnect protocol of a SoC configuration (the bus-type axis of
/// Table I). All three route reads combinationally (the single-cycle cores
/// need zero-latency loads); they differ in the write path:
///  - APB: writes commit directly at the end of the store cycle;
///  - AHB: one pipeline stage (address/data phase registers) — writes are
///    posted and commit one cycle later, with store-to-load forwarding;
///  - AXI: two pipeline stages (write-address/write-data channel registers
///    then a commit stage), forwarding from both stages.
enum class BusProtocol { kApb, kAhb, kAxi };

[[nodiscard]] std::string_view bus_protocol_name(BusProtocol p);

/// Per-core bus segment outputs.
struct BusSegmentIO {
  Bus rdata_to_core;  // xlen bits: dmem read data after lane fabric +
                      // forwarding (MMIO reads are muxed in by the SoC)
  NetId is_mmio;      // address decodes to the MMIO window (bit 30)
  NetId mmio_we;      // MMIO store request this cycle
  Bus mmio_wdata;     // low 32 bits of the store data
};

/// Builds one core's bus segment: address decode, a `fabric_width`-lane
/// data fabric (lanes carry rotating copies of the xlen-bit word; the lane
/// group actually consumed is steered by low word-address bits, so every
/// lane is architecturally live), protocol pipeline registers, and
/// store-to-load forwarding for the posted-write protocols.
///
/// `dmem_*` wires are driven by this function and must connect to the data
/// memory macro; `dmem_rdata` is the macro's read port.
[[nodiscard]] BusSegmentIO build_bus_segment(
    Builder& builder, BusProtocol protocol, int fabric_width, NetId clk,
    NetId rstn, const CoreIO& core, int xlen, const Bus& dmem_rdata,
    const Bus& dmem_raddr, const Bus& dmem_waddr, const Bus& dmem_wdata,
    NetId dmem_we, const std::string& name);

}  // namespace ssresf::soc
