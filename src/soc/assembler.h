#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ssresf::soc {

/// A small two-pass RISC-V assembler covering the subset the SSRESF cores
/// execute: RV32I/RV64I base, M, A (word forms), and the F/D move/add/mul
/// instructions, plus common pseudo-instructions (li, mv, j, nop, beqz,
/// bnez, ret) and the `.word` directive.
///
/// Syntax: one instruction per line; `label:` definitions; `#` or `//`
/// comments; operands are registers (x0..x31 or ABI names, f0..f31),
/// immediates (decimal or 0x hex), `imm(reg)` address forms, and label
/// references for branch/jump targets.
struct Program {
  std::vector<std::uint32_t> words;            // text image, word per instr
  std::map<std::string, std::uint32_t> symbols;  // label -> byte address
};

[[nodiscard]] Program assemble(std::string_view source);

/// Register name -> index (x-names and ABI names); throws ParseError on
/// unknown names. Exposed for tests.
[[nodiscard]] int parse_register(std::string_view name);
[[nodiscard]] int parse_fp_register(std::string_view name);

}  // namespace ssresf::soc
