#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "soc/core.h"

namespace ssresf::soc {

/// A self-contained workload: assembly source plus the output-port words a
/// correct run must emit (in order). The golden-run tests assert the
/// sequence; the fault-injection campaign compares full output traces.
struct Workload {
  std::string name;
  std::string source;
  std::vector<std::uint32_t> expected_outputs;
};

/// Array checksum with per-iteration partial sums (base ISA only).
[[nodiscard]] Workload checksum_workload(int n = 12);

/// Iterative Fibonacci, emitting each term (base ISA only).
[[nodiscard]] Workload fibonacci_workload(int terms = 16);

/// Bubble sort of a small array, emitting the sorted elements; exercises
/// sub-word loads/stores (base ISA only).
[[nodiscard]] Workload sort_workload();

/// 2x2 integer matrix multiply using MUL (requires M).
[[nodiscard]] Workload matmul_workload();

/// Quotient/remainder chain using DIV/REM (requires M).
[[nodiscard]] Workload divider_workload();

/// Atomic add/swap sequence (requires A).
[[nodiscard]] Workload atomic_workload();

/// Single-precision dot product on exactly-representable values
/// (requires F). Values are chosen so truncation-rounding hardware matches
/// IEEE results exactly.
[[nodiscard]] Workload fp_dot_workload();

/// A composite workload matched to the core's ISA: base phases plus one
/// phase per available extension. This is the campaign's default software
/// stack. `light` drops the Fibonacci phase and shortens the checksum for
/// large-SoC campaigns where wall-clock matters more than cycle volume.
[[nodiscard]] Workload benchmark_workload(const CoreConfig& config,
                                          bool light = false);

/// All workloads runnable on `config`, for sweep-style tests.
[[nodiscard]] std::vector<Workload> workloads_for(const CoreConfig& config);

}  // namespace ssresf::soc
