#pragma once

#include "soc/datapath.h"

namespace ssresf::soc {

/// Builds a register file out of DFFE cells with one synchronous write port
/// and `read_sels.size()` combinational read ports (mux trees).
///
/// When `reg0_is_zero` is set, register 0 is hard-wired to zero (the RISC-V
/// integer register file); otherwise all 2^sel registers are real (the FP
/// register file).
[[nodiscard]] std::vector<Bus> build_register_file(
    Builder& builder, NetId clk, NetId rstn, NetId we, const Bus& rd_sel,
    const Bus& wdata, std::span<const Bus> read_sels, bool reg0_is_zero,
    const std::string& name);

}  // namespace ssresf::soc
