#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/builder.h"

namespace ssresf::soc {

using netlist::NetId;
using Builder = netlist::NetlistBuilder;

/// A bus is a vector of single-bit nets, least-significant bit first.
using Bus = std::vector<NetId>;

// --- constants and wiring ------------------------------------------------------
[[nodiscard]] Bus bus_constant(Builder& b, int width, std::uint64_t value);
[[nodiscard]] Bus replicate_net(int width, NetId net);
[[nodiscard]] Bus slice(const Bus& a, int lo, int len);
[[nodiscard]] Bus concat(const Bus& low, const Bus& high);
[[nodiscard]] Bus zero_extend(Builder& b, const Bus& a, int width);
[[nodiscard]] Bus sign_extend(const Bus& a, int width);

// --- bitwise ---------------------------------------------------------------------
[[nodiscard]] Bus bus_not(Builder& b, const Bus& a);
[[nodiscard]] Bus bus_and(Builder& b, const Bus& a, const Bus& c);
[[nodiscard]] Bus bus_or(Builder& b, const Bus& a, const Bus& c);
[[nodiscard]] Bus bus_xor(Builder& b, const Bus& a, const Bus& c);
/// AND every bit of `a` with the single net `m` (bus masking).
[[nodiscard]] Bus bus_mask(Builder& b, const Bus& a, NetId m);

// --- selection ----------------------------------------------------------------------
/// Per-bit 2:1 mux: sel == 0 -> a, sel == 1 -> c.
[[nodiscard]] Bus bus_mux(Builder& b, NetId sel, const Bus& a, const Bus& c);
/// N-way mux tree: options[i] is selected when sel == i. Options beyond the
/// provided count return the last option (callers pad when that matters).
[[nodiscard]] Bus bus_mux_tree(Builder& b, const Bus& sel,
                               std::span<const Bus> options);
/// One-hot decoder: 2^sel.size() outputs.
[[nodiscard]] std::vector<NetId> decode(Builder& b, const Bus& sel);

// --- arithmetic ------------------------------------------------------------------------
struct AddResult {
  Bus sum;
  NetId carry;
};
/// Ripple-carry adder; operands must have equal width.
[[nodiscard]] AddResult ripple_add(Builder& b, const Bus& a, const Bus& c,
                                   NetId carry_in);
[[nodiscard]] Bus add(Builder& b, const Bus& a, const Bus& c);
/// a - c via two's complement; carry == 1 means no borrow (a >= c unsigned).
[[nodiscard]] AddResult subtract(Builder& b, const Bus& a, const Bus& c);
[[nodiscard]] Bus negate(Builder& b, const Bus& a);

// --- comparison -------------------------------------------------------------------------
[[nodiscard]] NetId equal(Builder& b, const Bus& a, const Bus& c);
[[nodiscard]] NetId is_zero(Builder& b, const Bus& a);
[[nodiscard]] NetId less_unsigned(Builder& b, const Bus& a, const Bus& c);
[[nodiscard]] NetId less_signed(Builder& b, const Bus& a, const Bus& c);

// --- shifts (barrel, log stages; amount width selects up to 2^k - 1) ---------------------
[[nodiscard]] Bus shift_left(Builder& b, const Bus& a, const Bus& amount);
/// Logical/arithmetic right shift: vacated bits take `fill`.
[[nodiscard]] Bus shift_right(Builder& b, const Bus& a, const Bus& amount,
                              NetId fill);

// --- wide arithmetic ------------------------------------------------------------------------
/// Unsigned array multiplier: product has a.size() + c.size() bits.
[[nodiscard]] Bus multiply(Builder& b, const Bus& a, const Bus& c);

struct DivResult {
  Bus quotient;
  Bus remainder;
};
/// Unsigned restoring divider (fully combinational). Division by zero yields
/// the RISC-V result: quotient all-ones, remainder = dividend.
[[nodiscard]] DivResult divide_unsigned(Builder& b, const Bus& a, const Bus& c);
/// Signed division with RISC-V semantics (including INT_MIN / -1).
[[nodiscard]] DivResult divide_signed(Builder& b, const Bus& a, const Bus& c);

/// Normalizing left-shifter: shifts `a` left until its MSB is 1 (or the bus
/// is exhausted) and reports the shift amount. Used by the FP adder.
struct NormalizeResult {
  Bus value;
  Bus amount;  // ceil(log2(width)) + 1 bits
};
[[nodiscard]] NormalizeResult normalize_left(Builder& b, const Bus& a);

}  // namespace ssresf::soc
