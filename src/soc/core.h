#pragma once

#include <string>

#include "soc/datapath.h"

namespace ssresf::soc {

/// ISA selection for a core instance (the CPU-type axis of Table I).
struct CoreConfig {
  int xlen = 32;        // 32 or 64
  bool ext_m = false;   // integer multiply/divide
  bool ext_a = false;   // atomics (word forms)
  bool ext_f = false;   // single-precision FP (add/mul/moves/loads/stores)
  bool ext_d = false;   // double-precision FP (register-register add/mul)

  [[nodiscard]] std::string isa_string() const;

  static CoreConfig from_isa(std::string_view isa);  // e.g. "RV32IMAFD"
};

/// Nets exposed by a generated core.
///
/// The data port is word-granular: the core performs sub-word extraction and
/// read-modify-write merging internally, so `data_wdata` is always a full
/// word and `data_addr` a byte address whose word part selects the location.
/// `data_rdata` must be driven by the surrounding fabric (create the nets
/// before calling build_core and drive them afterwards).
struct CoreIO {
  Bus imem_addr;   // byte address of the fetch (PC), xlen bits
  Bus data_addr;   // byte address for loads/stores, xlen bits
  NetId data_re;   // load or store in flight (read used for merging too)
  NetId data_we;   // store commit request
  Bus data_wdata;  // merged full word, xlen bits
  NetId halt;      // sticky; raised by ecall/ebreak
};

/// Builds a single-cycle RV32/RV64 core under a scope named `name` (module
/// class kCpu). `instr` is the 32-bit fetched instruction bus and
/// `data_rdata` the word at data_addr; both are consumed as inputs.
[[nodiscard]] CoreIO build_core(Builder& builder, const CoreConfig& config,
                                NetId clk, NetId rstn, const Bus& instr,
                                const Bus& data_rdata,
                                const std::string& name);

}  // namespace ssresf::soc
