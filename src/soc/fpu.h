#pragma once

#include "soc/datapath.h"

namespace ssresf::soc {

/// Floating-point format descriptor (IEEE-754 field layout).
struct FpFormat {
  int exp_bits;
  int man_bits;
  [[nodiscard]] int width() const { return 1 + exp_bits + man_bits; }
  [[nodiscard]] int bias() const { return (1 << (exp_bits - 1)) - 1; }

  static FpFormat single() { return {8, 23}; }
  static FpFormat double_() { return {11, 52}; }
};

/// Structural floating-point adder.
///
/// Fidelity note (documented substitution): supports normal numbers and
/// zero; subnormal results flush to zero, rounding is truncation, and
/// inf/NaN are not special-cased (overflow saturates at max exponent). The
/// gate structure — magnitude compare, alignment barrel shifter, wide adder,
/// leading-zero normalizer, exponent adjust — matches a real FP datapath,
/// which is what the radiation campaign exercises.
[[nodiscard]] Bus build_fp_adder(Builder& builder, const Bus& a, const Bus& b,
                                 FpFormat fmt);

/// Structural floating-point multiplier (same fidelity notes; mantissa
/// product comes from the array multiplier).
[[nodiscard]] Bus build_fp_multiplier(Builder& builder, const Bus& a,
                                      const Bus& b, FpFormat fmt);

}  // namespace ssresf::soc
