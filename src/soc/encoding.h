#pragma once

#include <cstdint>

namespace ssresf::soc::rv {

// RISC-V base opcodes (bits [6:0]).
inline constexpr std::uint32_t kOpLoad = 0x03;
inline constexpr std::uint32_t kOpLoadFp = 0x07;
inline constexpr std::uint32_t kOpImm = 0x13;
inline constexpr std::uint32_t kOpAuipc = 0x17;
inline constexpr std::uint32_t kOpImm32 = 0x1B;
inline constexpr std::uint32_t kOpStore = 0x23;
inline constexpr std::uint32_t kOpStoreFp = 0x27;
inline constexpr std::uint32_t kOpAmo = 0x2F;
inline constexpr std::uint32_t kOp = 0x33;
inline constexpr std::uint32_t kOpLui = 0x37;
inline constexpr std::uint32_t kOp32 = 0x3B;
inline constexpr std::uint32_t kOpBranch = 0x63;
inline constexpr std::uint32_t kOpJalr = 0x67;
inline constexpr std::uint32_t kOpJal = 0x6F;
inline constexpr std::uint32_t kOpSystem = 0x73;
inline constexpr std::uint32_t kOpFp = 0x53;

// AMO funct5 values (bits [31:27]).
inline constexpr std::uint32_t kAmoAdd = 0x00;
inline constexpr std::uint32_t kAmoSwap = 0x01;
inline constexpr std::uint32_t kAmoLr = 0x02;
inline constexpr std::uint32_t kAmoSc = 0x03;
inline constexpr std::uint32_t kAmoXor = 0x04;
inline constexpr std::uint32_t kAmoOr = 0x08;
inline constexpr std::uint32_t kAmoAnd = 0x0C;

// OP-FP funct7 values.
inline constexpr std::uint32_t kFpAddS = 0x00;
inline constexpr std::uint32_t kFpAddD = 0x01;
inline constexpr std::uint32_t kFpMulS = 0x08;
inline constexpr std::uint32_t kFpMulD = 0x09;
inline constexpr std::uint32_t kFpMvXW = 0x70;  // fmv.x.w
inline constexpr std::uint32_t kFpMvWX = 0x78;  // fmv.w.x

// Field packers.
[[nodiscard]] constexpr std::uint32_t r_type(std::uint32_t opcode,
                                             std::uint32_t rd,
                                             std::uint32_t funct3,
                                             std::uint32_t rs1,
                                             std::uint32_t rs2,
                                             std::uint32_t funct7) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
         (funct7 << 25);
}

[[nodiscard]] constexpr std::uint32_t i_type(std::uint32_t opcode,
                                             std::uint32_t rd,
                                             std::uint32_t funct3,
                                             std::uint32_t rs1,
                                             std::int32_t imm) {
  return opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) |
         (static_cast<std::uint32_t>(imm & 0xFFF) << 20);
}

[[nodiscard]] constexpr std::uint32_t s_type(std::uint32_t opcode,
                                             std::uint32_t funct3,
                                             std::uint32_t rs1,
                                             std::uint32_t rs2,
                                             std::int32_t imm) {
  const auto u = static_cast<std::uint32_t>(imm & 0xFFF);
  return opcode | ((u & 0x1F) << 7) | (funct3 << 12) | (rs1 << 15) |
         (rs2 << 20) | ((u >> 5) << 25);
}

[[nodiscard]] constexpr std::uint32_t b_type(std::uint32_t opcode,
                                             std::uint32_t funct3,
                                             std::uint32_t rs1,
                                             std::uint32_t rs2,
                                             std::int32_t offset) {
  const auto u = static_cast<std::uint32_t>(offset);
  return opcode | (((u >> 11) & 1) << 7) | (((u >> 1) & 0xF) << 8) |
         (funct3 << 12) | (rs1 << 15) | (rs2 << 20) |
         (((u >> 5) & 0x3F) << 25) | (((u >> 12) & 1) << 31);
}

[[nodiscard]] constexpr std::uint32_t u_type(std::uint32_t opcode,
                                             std::uint32_t rd,
                                             std::uint32_t imm20) {
  return opcode | (rd << 7) | (imm20 << 12);
}

[[nodiscard]] constexpr std::uint32_t j_type(std::uint32_t opcode,
                                             std::uint32_t rd,
                                             std::int32_t offset) {
  const auto u = static_cast<std::uint32_t>(offset);
  return opcode | (rd << 7) | (((u >> 12) & 0xFF) << 12) |
         (((u >> 11) & 1) << 20) | (((u >> 1) & 0x3FF) << 21) |
         (((u >> 20) & 1) << 31);
}

}  // namespace ssresf::soc::rv
