#include "soc/assembler.h"

#include <array>
#include <cstdlib>
#include <optional>

#include "soc/encoding.h"
#include "util/error.h"
#include "util/strings.h"

namespace ssresf::soc {

namespace {

using namespace rv;

const std::array<std::string_view, 32> kAbiNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

std::optional<int> try_register(std::string_view name) {
  if (name.size() >= 2 && name[0] == 'x') {
    int value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return std::nullopt;
      value = value * 10 + (name[i] - '0');
    }
    if (value < 32) return value;
    return std::nullopt;
  }
  if (name == "fp") return 8;
  for (int i = 0; i < 32; ++i) {
    if (kAbiNames[static_cast<std::size_t>(i)] == name) return i;
  }
  return std::nullopt;
}

struct Operand {
  enum class Kind { kReg, kFpReg, kImm, kSymbol, kMem };  // kMem: imm(reg)
  Kind kind;
  int reg = 0;
  std::int64_t imm = 0;
  std::string symbol;
};

struct SourceLine {
  std::string mnemonic;
  std::vector<Operand> operands;
  int line_number = 0;
};

bool is_number(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  if (s.size() > i + 1 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    return s.size() > i + 2;
  }
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  return true;
}

std::int64_t parse_number(std::string_view s, int line) {
  errno = 0;
  char* end = nullptr;
  const std::string text(s);
  const long long v = std::strtoll(text.c_str(), &end, 0);
  if (end != text.c_str() + text.size()) {
    throw ParseError("bad number '" + text + "'", line);
  }
  return v;
}

Operand parse_operand(std::string_view text, int line) {
  text = util::trim(text);
  Operand op;
  // imm(reg) address form
  const auto open = text.find('(');
  if (open != std::string_view::npos && text.back() == ')') {
    op.kind = Operand::Kind::kMem;
    const std::string_view imm_part = util::trim(text.substr(0, open));
    op.imm = imm_part.empty() ? 0 : parse_number(imm_part, line);
    const auto reg = try_register(
        util::trim(text.substr(open + 1, text.size() - open - 2)));
    if (!reg) throw ParseError("bad base register in '" + std::string(text) + "'", line);
    op.reg = *reg;
    return op;
  }
  if (const auto reg = try_register(text)) {
    op.kind = Operand::Kind::kReg;
    op.reg = *reg;
    return op;
  }
  if (text.size() >= 2 && text[0] == 'f' && text[1] >= '0' && text[1] <= '9') {
    int value = 0;
    bool ok = true;
    for (std::size_t i = 1; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') {
        ok = false;
        break;
      }
      value = value * 10 + (text[i] - '0');
    }
    if (ok && value < 32) {
      op.kind = Operand::Kind::kFpReg;
      op.reg = value;
      return op;
    }
  }
  if (is_number(text)) {
    op.kind = Operand::Kind::kImm;
    op.imm = parse_number(text, line);
    return op;
  }
  op.kind = Operand::Kind::kSymbol;
  op.symbol = std::string(text);
  return op;
}

struct InstrSpec {
  enum class Format {
    kR,       // rd, rs1, rs2
    kI,       // rd, rs1, imm
    kILoad,   // rd, imm(rs1)
    kShift,   // rd, rs1, shamt
    kS,       // rs2, imm(rs1)
    kB,       // rs1, rs2, label
    kU,       // rd, imm20
    kJ,       // rd, label
    kJalr,    // rd, imm(rs1) | rd, rs1, imm
    kNone,    // no operands
    kAmo,     // rd, rs2, (rs1)
    kFpR,     // frd, frs1, frs2
    kFpLoad,  // frd, imm(rs1)
    kFpStore, // frs2, imm(rs1)
    kFpMvToF, // frd, rs1
    kFpMvToX, // rd, frs1
  };
  Format format;
  std::uint32_t opcode;
  std::uint32_t funct3;
  std::uint32_t funct7;
};

const std::map<std::string, InstrSpec>& instr_table() {
  using F = InstrSpec::Format;
  static const std::map<std::string, InstrSpec> table = {
      {"lui", {F::kU, kOpLui, 0, 0}},
      {"auipc", {F::kU, kOpAuipc, 0, 0}},
      {"jal", {F::kJ, kOpJal, 0, 0}},
      {"jalr", {F::kJalr, kOpJalr, 0, 0}},
      {"beq", {F::kB, kOpBranch, 0, 0}},
      {"bne", {F::kB, kOpBranch, 1, 0}},
      {"blt", {F::kB, kOpBranch, 4, 0}},
      {"bge", {F::kB, kOpBranch, 5, 0}},
      {"bltu", {F::kB, kOpBranch, 6, 0}},
      {"bgeu", {F::kB, kOpBranch, 7, 0}},
      {"lb", {F::kILoad, kOpLoad, 0, 0}},
      {"lh", {F::kILoad, kOpLoad, 1, 0}},
      {"lw", {F::kILoad, kOpLoad, 2, 0}},
      {"ld", {F::kILoad, kOpLoad, 3, 0}},
      {"lbu", {F::kILoad, kOpLoad, 4, 0}},
      {"lhu", {F::kILoad, kOpLoad, 5, 0}},
      {"lwu", {F::kILoad, kOpLoad, 6, 0}},
      {"sb", {F::kS, kOpStore, 0, 0}},
      {"sh", {F::kS, kOpStore, 1, 0}},
      {"sw", {F::kS, kOpStore, 2, 0}},
      {"sd", {F::kS, kOpStore, 3, 0}},
      {"addi", {F::kI, kOpImm, 0, 0}},
      {"slti", {F::kI, kOpImm, 2, 0}},
      {"sltiu", {F::kI, kOpImm, 3, 0}},
      {"xori", {F::kI, kOpImm, 4, 0}},
      {"ori", {F::kI, kOpImm, 6, 0}},
      {"andi", {F::kI, kOpImm, 7, 0}},
      {"slli", {F::kShift, kOpImm, 1, 0x00}},
      {"srli", {F::kShift, kOpImm, 5, 0x00}},
      {"srai", {F::kShift, kOpImm, 5, 0x20}},
      {"add", {F::kR, kOp, 0, 0x00}},
      {"sub", {F::kR, kOp, 0, 0x20}},
      {"sll", {F::kR, kOp, 1, 0x00}},
      {"slt", {F::kR, kOp, 2, 0x00}},
      {"sltu", {F::kR, kOp, 3, 0x00}},
      {"xor", {F::kR, kOp, 4, 0x00}},
      {"srl", {F::kR, kOp, 5, 0x00}},
      {"sra", {F::kR, kOp, 5, 0x20}},
      {"or", {F::kR, kOp, 6, 0x00}},
      {"and", {F::kR, kOp, 7, 0x00}},
      {"addiw", {F::kI, kOpImm32, 0, 0}},
      {"slliw", {F::kShift, kOpImm32, 1, 0x00}},
      {"srliw", {F::kShift, kOpImm32, 5, 0x00}},
      {"sraiw", {F::kShift, kOpImm32, 5, 0x20}},
      {"addw", {F::kR, kOp32, 0, 0x00}},
      {"subw", {F::kR, kOp32, 0, 0x20}},
      {"sllw", {F::kR, kOp32, 1, 0x00}},
      {"srlw", {F::kR, kOp32, 5, 0x00}},
      {"sraw", {F::kR, kOp32, 5, 0x20}},
      {"mul", {F::kR, kOp, 0, 0x01}},
      {"mulh", {F::kR, kOp, 1, 0x01}},
      {"mulhsu", {F::kR, kOp, 2, 0x01}},
      {"mulhu", {F::kR, kOp, 3, 0x01}},
      {"div", {F::kR, kOp, 4, 0x01}},
      {"divu", {F::kR, kOp, 5, 0x01}},
      {"rem", {F::kR, kOp, 6, 0x01}},
      {"remu", {F::kR, kOp, 7, 0x01}},
      {"lr.w", {F::kAmo, kOpAmo, 2, kAmoLr << 2}},
      {"sc.w", {F::kAmo, kOpAmo, 2, kAmoSc << 2}},
      {"amoswap.w", {F::kAmo, kOpAmo, 2, kAmoSwap << 2}},
      {"amoadd.w", {F::kAmo, kOpAmo, 2, kAmoAdd << 2}},
      {"amoxor.w", {F::kAmo, kOpAmo, 2, kAmoXor << 2}},
      {"amoor.w", {F::kAmo, kOpAmo, 2, kAmoOr << 2}},
      {"amoand.w", {F::kAmo, kOpAmo, 2, kAmoAnd << 2}},
      {"flw", {F::kFpLoad, kOpLoadFp, 2, 0}},
      {"fsw", {F::kFpStore, kOpStoreFp, 2, 0}},
      {"fadd.s", {F::kFpR, kOpFp, 0, kFpAddS}},
      {"fmul.s", {F::kFpR, kOpFp, 0, kFpMulS}},
      {"fadd.d", {F::kFpR, kOpFp, 0, kFpAddD}},
      {"fmul.d", {F::kFpR, kOpFp, 0, kFpMulD}},
      {"fmv.w.x", {F::kFpMvToF, kOpFp, 0, kFpMvWX}},
      {"fmv.x.w", {F::kFpMvToX, kOpFp, 0, kFpMvXW}},
      {"ecall", {F::kNone, kOpSystem, 0, 0}},
      {"ebreak", {F::kNone, kOpSystem, 0, 1}},
  };
  return table;
}

class Assembler {
 public:
  explicit Assembler(std::string_view source) { parse_lines(source); }

  Program run() {
    // Pass 1: lay out addresses (pseudo-expansion sizes are known up front).
    std::uint32_t pc = 0;
    for (const SourceLine& line : lines_) {
      for (const std::string& label : pending_labels_per_line_[&line - lines_.data()]) {
        program_.symbols[label] = pc;
      }
      pc += 4 * size_in_words(line);
    }
    // Pass 2: encode.
    pc = 0;
    for (const SourceLine& line : lines_) {
      encode(line, pc);
    }
    return std::move(program_);
  }

 private:
  void parse_lines(std::string_view source) {
    int number = 0;
    std::vector<std::string> labels;
    for (std::string_view raw : split_lines(source)) {
      ++number;
      std::string_view text = raw;
      const auto hash = text.find('#');
      if (hash != std::string_view::npos) text = text.substr(0, hash);
      const auto slashes = text.find("//");
      if (slashes != std::string_view::npos) text = text.substr(0, slashes);
      text = util::trim(text);
      while (!text.empty()) {
        const auto colon = text.find(':');
        // Leading "label:" prefixes.
        if (colon != std::string_view::npos) {
          const std::string_view head = util::trim(text.substr(0, colon));
          if (!head.empty() && head.find(' ') == std::string_view::npos &&
              !is_number(head)) {
            labels.emplace_back(head);
            text = util::trim(text.substr(colon + 1));
            continue;
          }
        }
        break;
      }
      if (text.empty()) continue;

      SourceLine line;
      line.line_number = number;
      const auto space = text.find_first_of(" \t");
      line.mnemonic = util::to_lower(
          space == std::string_view::npos ? text : text.substr(0, space));
      if (space != std::string_view::npos) {
        for (const auto& field : util::split(text.substr(space + 1), ',')) {
          line.operands.push_back(parse_operand(field, number));
        }
      }
      pending_labels_per_line_.push_back(std::move(labels));
      labels.clear();
      lines_.push_back(std::move(line));
    }
    if (!labels.empty()) {
      // Trailing labels point at the end of the image; attach a nop.
      SourceLine line;
      line.mnemonic = "nop";
      line.line_number = number;
      pending_labels_per_line_.push_back(std::move(labels));
      lines_.push_back(std::move(line));
    }
  }

  static std::vector<std::string_view> split_lines(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i == s.size() || s[i] == '\n') {
        out.push_back(s.substr(start, i - start));
        start = i + 1;
      }
    }
    return out;
  }

  [[nodiscard]] std::uint32_t size_in_words(const SourceLine& line) const {
    if (line.mnemonic == "li") {
      check_operands(line, 2);
      const std::int64_t imm = line.operands[1].imm;
      return (imm >= -2048 && imm < 2048) ? 1 : 2;
    }
    return 1;
  }

  static void check_operands(const SourceLine& line, std::size_t count) {
    if (line.operands.size() != count) {
      throw ParseError("'" + line.mnemonic + "' expects " +
                           std::to_string(count) + " operands",
                       line.line_number);
    }
  }

  [[nodiscard]] std::int64_t resolve(const Operand& op, int line) const {
    if (op.kind == Operand::Kind::kImm) return op.imm;
    if (op.kind == Operand::Kind::kSymbol) {
      const auto it = program_.symbols.find(op.symbol);
      if (it == program_.symbols.end()) {
        throw ParseError("undefined label '" + op.symbol + "'", line);
      }
      return it->second;
    }
    throw ParseError("expected immediate or label", line);
  }

  static int reg_of(const Operand& op, const SourceLine& line) {
    if (op.kind != Operand::Kind::kReg) {
      throw ParseError("expected integer register", line.line_number);
    }
    return op.reg;
  }
  static int fpreg_of(const Operand& op, const SourceLine& line) {
    if (op.kind != Operand::Kind::kFpReg) {
      throw ParseError("expected FP register", line.line_number);
    }
    return op.reg;
  }

  void emit(std::uint32_t word) { program_.words.push_back(word); }

  void encode(const SourceLine& line, std::uint32_t& pc) {
    const int ln = line.line_number;
    auto branch_offset = [&](const Operand& op) {
      const std::int64_t target = resolve(op, ln);
      const std::int64_t offset = target - static_cast<std::int64_t>(pc);
      if (offset % 2 != 0) throw ParseError("misaligned branch target", ln);
      return static_cast<std::int32_t>(offset);
    };

    // Pseudo-instructions first.
    if (line.mnemonic == "nop") {
      emit(i_type(kOpImm, 0, 0, 0, 0));
      pc += 4;
      return;
    }
    if (line.mnemonic == "li") {
      check_operands(line, 2);
      const int rd = reg_of(line.operands[0], line);
      const std::int64_t imm = line.operands[1].imm;
      if (imm >= -2048 && imm < 2048) {
        emit(i_type(kOpImm, static_cast<std::uint32_t>(rd), 0, 0,
                    static_cast<std::int32_t>(imm)));
        pc += 4;
      } else {
        // lui + addi pair; adjust for addi sign extension.
        const auto v = static_cast<std::uint32_t>(imm);
        std::uint32_t hi = (v + 0x800) >> 12;
        // Unsigned subtraction: v - (hi << 12) wraps to the signed 12-bit
        // remainder without the signed overflow v = INT32_MAX would hit.
        const auto lo = static_cast<std::int32_t>(v - (hi << 12));
        emit(u_type(kOpLui, static_cast<std::uint32_t>(rd), hi & 0xFFFFF));
        emit(i_type(kOpImm, static_cast<std::uint32_t>(rd), 0,
                    static_cast<std::uint32_t>(rd), lo));
        pc += 8;
      }
      return;
    }
    if (line.mnemonic == "mv") {
      check_operands(line, 2);
      emit(i_type(kOpImm, static_cast<std::uint32_t>(reg_of(line.operands[0], line)), 0,
                  static_cast<std::uint32_t>(reg_of(line.operands[1], line)), 0));
      pc += 4;
      return;
    }
    if (line.mnemonic == "j") {
      check_operands(line, 1);
      emit(j_type(kOpJal, 0, branch_offset(line.operands[0])));
      pc += 4;
      return;
    }
    if (line.mnemonic == "ret") {
      emit(i_type(kOpJalr, 0, 0, 1, 0));
      pc += 4;
      return;
    }
    if (line.mnemonic == "beqz" || line.mnemonic == "bnez") {
      check_operands(line, 2);
      const std::uint32_t funct3 = line.mnemonic == "beqz" ? 0 : 1;
      emit(b_type(kOpBranch, funct3,
                  static_cast<std::uint32_t>(reg_of(line.operands[0], line)), 0,
                  branch_offset(line.operands[1])));
      pc += 4;
      return;
    }
    if (line.mnemonic == ".word") {
      check_operands(line, 1);
      emit(static_cast<std::uint32_t>(resolve(line.operands[0], ln)));
      pc += 4;
      return;
    }

    const auto it = instr_table().find(line.mnemonic);
    if (it == instr_table().end()) {
      throw ParseError("unknown mnemonic '" + line.mnemonic + "'", ln);
    }
    const InstrSpec& spec = it->second;
    using F = InstrSpec::Format;
    switch (spec.format) {
      case F::kR: {
        check_operands(line, 3);
        emit(r_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    spec.funct3,
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    static_cast<std::uint32_t>(reg_of(line.operands[2], line)),
                    spec.funct7));
        break;
      }
      case F::kI: {
        check_operands(line, 3);
        emit(i_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    spec.funct3,
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    static_cast<std::int32_t>(resolve(line.operands[2], ln))));
        break;
      }
      case F::kShift: {
        check_operands(line, 3);
        const auto shamt =
            static_cast<std::uint32_t>(resolve(line.operands[2], ln));
        emit(i_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    spec.funct3,
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    static_cast<std::int32_t>(shamt | (spec.funct7 << 5))));
        break;
      }
      case F::kILoad: {
        check_operands(line, 2);
        const Operand& mem = line.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          throw ParseError("expected imm(reg) operand", ln);
        }
        emit(i_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    spec.funct3, static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::int32_t>(mem.imm)));
        break;
      }
      case F::kS: {
        check_operands(line, 2);
        const Operand& mem = line.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          throw ParseError("expected imm(reg) operand", ln);
        }
        emit(s_type(spec.opcode, spec.funct3,
                    static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    static_cast<std::int32_t>(mem.imm)));
        break;
      }
      case F::kB: {
        check_operands(line, 3);
        emit(b_type(spec.opcode, spec.funct3,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    branch_offset(line.operands[2])));
        break;
      }
      case F::kU: {
        check_operands(line, 2);
        emit(u_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    static_cast<std::uint32_t>(resolve(line.operands[1], ln)) &
                        0xFFFFF));
        break;
      }
      case F::kJ: {
        check_operands(line, 2);
        emit(j_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    branch_offset(line.operands[1])));
        break;
      }
      case F::kJalr: {
        check_operands(line, 2);
        const Operand& mem = line.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          throw ParseError("jalr expects rd, imm(rs1)", ln);
        }
        emit(i_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)), 0,
                    static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::int32_t>(mem.imm)));
        break;
      }
      case F::kNone: {
        emit(i_type(spec.opcode, 0, 0, 0,
                    static_cast<std::int32_t>(spec.funct7)));
        break;
      }
      case F::kAmo: {
        check_operands(line, 3);
        const Operand& mem = line.operands[2];
        if (mem.kind != Operand::Kind::kMem || mem.imm != 0) {
          throw ParseError("amo expects rd, rs2, (rs1)", ln);
        }
        emit(r_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    spec.funct3, static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    spec.funct7));
        break;
      }
      case F::kFpR: {
        check_operands(line, 3);
        emit(r_type(spec.opcode,
                    static_cast<std::uint32_t>(fpreg_of(line.operands[0], line)),
                    spec.funct3,
                    static_cast<std::uint32_t>(fpreg_of(line.operands[1], line)),
                    static_cast<std::uint32_t>(fpreg_of(line.operands[2], line)),
                    spec.funct7));
        break;
      }
      case F::kFpLoad: {
        check_operands(line, 2);
        const Operand& mem = line.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          throw ParseError("expected imm(reg) operand", ln);
        }
        emit(i_type(spec.opcode,
                    static_cast<std::uint32_t>(fpreg_of(line.operands[0], line)),
                    spec.funct3, static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::int32_t>(mem.imm)));
        break;
      }
      case F::kFpStore: {
        check_operands(line, 2);
        const Operand& mem = line.operands[1];
        if (mem.kind != Operand::Kind::kMem) {
          throw ParseError("expected imm(reg) operand", ln);
        }
        emit(s_type(spec.opcode, spec.funct3,
                    static_cast<std::uint32_t>(mem.reg),
                    static_cast<std::uint32_t>(fpreg_of(line.operands[0], line)),
                    static_cast<std::int32_t>(mem.imm)));
        break;
      }
      case F::kFpMvToF: {
        check_operands(line, 2);
        emit(r_type(spec.opcode,
                    static_cast<std::uint32_t>(fpreg_of(line.operands[0], line)),
                    0,
                    static_cast<std::uint32_t>(reg_of(line.operands[1], line)),
                    0, spec.funct7));
        break;
      }
      case F::kFpMvToX: {
        check_operands(line, 2);
        emit(r_type(spec.opcode,
                    static_cast<std::uint32_t>(reg_of(line.operands[0], line)),
                    0,
                    static_cast<std::uint32_t>(fpreg_of(line.operands[1], line)),
                    0, spec.funct7));
        break;
      }
    }
    pc += 4;
  }

  std::vector<SourceLine> lines_;
  std::vector<std::vector<std::string>> pending_labels_per_line_;
  Program program_;
};

}  // namespace

Program assemble(std::string_view source) { return Assembler(source).run(); }

int parse_register(std::string_view name) {
  const auto reg = try_register(name);
  if (!reg) throw ParseError("unknown register '" + std::string(name) + "'");
  return *reg;
}

int parse_fp_register(std::string_view name) {
  if (name.size() >= 2 && name[0] == 'f') {
    int value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        throw ParseError("unknown FP register '" + std::string(name) + "'");
      }
      value = value * 10 + (name[i] - '0');
    }
    if (value < 32) return value;
  }
  throw ParseError("unknown FP register '" + std::string(name) + "'");
}

}  // namespace ssresf::soc
