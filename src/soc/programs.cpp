#include "soc/programs.h"

#include <bit>

#include "util/error.h"
#include "util/strings.h"

namespace ssresf::soc {

namespace {
constexpr const char* kOutportLoad = "  li a0, 0x40000000\n";
}

Workload checksum_workload(int n) {
  if (n < 1 || n > 64) throw InvalidArgument("checksum n out of range");
  Workload w;
  w.name = "checksum";
  std::string s = kOutportLoad;
  s += util::format(
      "  li t0, 0\n"
      "  li t1, %d\n"
      "  li t2, 0\n"
      "  li t3, 0x100\n"
      "init:\n"
      "  slli t4, t0, 2\n"
      "  add  t4, t4, t3\n"
      "  add  t5, t0, t0\n"
      "  add  t5, t5, t0\n"
      "  addi t5, t5, 1\n"
      "  sw   t5, 0(t4)\n"
      "  addi t0, t0, 1\n"
      "  blt  t0, t1, init\n"
      "  li t0, 0\n"
      "loop:\n"
      "  slli t4, t0, 2\n"
      "  add  t4, t4, t3\n"
      "  lw   t5, 0(t4)\n"
      "  add  t2, t2, t5\n"
      "  sw   t2, 0(a0)\n"
      "  addi t0, t0, 1\n"
      "  blt  t0, t1, loop\n"
      "  ecall\n",
      n);
  w.source = std::move(s);
  std::uint32_t sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<std::uint32_t>(3 * i + 1);
    w.expected_outputs.push_back(sum);
  }
  return w;
}

Workload fibonacci_workload(int terms) {
  if (terms < 1 || terms > 40) throw InvalidArgument("fibonacci terms out of range");
  Workload w;
  w.name = "fibonacci";
  w.source = std::string(kOutportLoad) +
             util::format(
                 "  li t0, 0\n"
                 "  li t1, 1\n"
                 "  li t2, %d\n"
                 "fib:\n"
                 "  add t3, t0, t1\n"
                 "  mv t0, t1\n"
                 "  mv t1, t3\n"
                 "  sw t3, 0(a0)\n"
                 "  addi t2, t2, -1\n"
                 "  bnez t2, fib\n"
                 "  ecall\n",
                 terms);
  std::uint32_t a = 0;
  std::uint32_t b = 1;
  for (int i = 0; i < terms; ++i) {
    const std::uint32_t c = a + b;
    w.expected_outputs.push_back(c);
    a = b;
    b = c;
  }
  return w;
}

Workload sort_workload() {
  Workload w;
  w.name = "bubble_sort";
  // Seeds the array with ((i * 7) ^ 5) & 0xFF via byte stores, bubble-sorts
  // with word accesses, then emits each element with halfword loads.
  constexpr int kN = 8;
  w.source = std::string(kOutportLoad) +
             util::format(
                 "  li t0, 0\n"
                 "  li t1, %d\n"
                 "  li t3, 0x200\n"
                 "seed:\n"
                 "  slli t4, t0, 2\n"
                 "  add  t4, t4, t3\n"
                 "  li   t5, 7\n"
                 "  mv   t6, t0\n"
                 "  li   s0, 0\n"
                 "mul7:\n"            // s0 = t6 * 7 by repeated addition
                 "  beqz t6, mul7d\n"
                 "  add  s0, s0, t5\n"
                 "  addi t6, t6, -1\n"
                 "  j mul7\n"
                 "mul7d:\n"
                 "  xori s0, s0, 5\n"
                 "  andi s0, s0, 255\n"
                 "  sb   s0, 0(t4)\n"
                 "  sw   s0, 0(t4)\n"
                 "  addi t0, t0, 1\n"
                 "  blt  t0, t1, seed\n"
                 // bubble sort
                 "  li s1, 0\n"       // pass counter
                 "outer:\n"
                 "  li t0, 0\n"
                 "inner:\n"
                 "  addi s2, t1, -1\n"
                 "  bge  t0, s2, innerd\n"
                 "  slli t4, t0, 2\n"
                 "  add  t4, t4, t3\n"
                 "  lw   t5, 0(t4)\n"
                 "  lw   t6, 4(t4)\n"
                 "  bge  t6, t5, noswap\n"
                 "  sw   t6, 0(t4)\n"
                 "  sw   t5, 4(t4)\n"
                 "noswap:\n"
                 "  addi t0, t0, 1\n"
                 "  j inner\n"
                 "innerd:\n"
                 "  addi s1, s1, 1\n"
                 "  blt  s1, t1, outer\n"
                 // emit sorted elements via halfword loads
                 "  li t0, 0\n"
                 "emit:\n"
                 "  slli t4, t0, 2\n"
                 "  add  t4, t4, t3\n"
                 "  lhu  t5, 0(t4)\n"
                 "  sw   t5, 0(a0)\n"
                 "  addi t0, t0, 1\n"
                 "  blt  t0, t1, emit\n"
                 "  ecall\n",
                 kN);
  std::vector<std::uint32_t> values;
  for (int i = 0; i < kN; ++i) {
    values.push_back(static_cast<std::uint32_t>(((i * 7) ^ 5) & 0xFF));
  }
  std::sort(values.begin(), values.end());
  w.expected_outputs = values;
  return w;
}

Workload matmul_workload() {
  Workload w;
  w.name = "matmul2x2";
  // C = A * B with A = [[3, 5], [7, 11]] and B = [[13, 17], [19, 23]].
  w.source = std::string(kOutportLoad) +
             "  li t0, 3\n  li t1, 5\n  li t2, 7\n  li t3, 11\n"
             "  li t4, 13\n  li t5, 17\n  li t6, 19\n  li s0, 23\n"
             // c00 = a00*b00 + a01*b10
             "  mul s1, t0, t4\n  mul s2, t1, t6\n  add s1, s1, s2\n"
             "  sw s1, 0(a0)\n"
             // c01 = a00*b01 + a01*b11
             "  mul s1, t0, t5\n  mul s2, t1, s0\n  add s1, s1, s2\n"
             "  sw s1, 0(a0)\n"
             // c10 = a10*b00 + a11*b10
             "  mul s1, t2, t4\n  mul s2, t3, t6\n  add s1, s1, s2\n"
             "  sw s1, 0(a0)\n"
             // c11 = a10*b01 + a11*b11
             "  mul s1, t2, t5\n  mul s2, t3, s0\n  add s1, s1, s2\n"
             "  sw s1, 0(a0)\n"
             "  ecall\n";
  w.expected_outputs = {3 * 13 + 5 * 19, 3 * 17 + 5 * 23, 7 * 13 + 11 * 19,
                        7 * 17 + 11 * 23};
  return w;
}

Workload divider_workload() {
  Workload w;
  w.name = "divider";
  w.source = std::string(kOutportLoad) +
             "  li t0, 1000003\n"
             "  li t1, 97\n"
             "  div t2, t0, t1\n  sw t2, 0(a0)\n"
             "  rem t3, t0, t1\n  sw t3, 0(a0)\n"
             "  li t4, -1000003\n"
             "  div t5, t4, t1\n  sw t5, 0(a0)\n"
             "  rem t6, t4, t1\n  sw t6, 0(a0)\n"
             "  divu s0, t0, t1\n  sw s0, 0(a0)\n"
             "  remu s1, t0, t1\n  sw s1, 0(a0)\n"
             "  li t1, 0\n"
             "  div s2, t0, t1\n  sw s2, 0(a0)\n"
             "  ecall\n";
  w.expected_outputs = {
      1000003 / 97,
      1000003 % 97,
      static_cast<std::uint32_t>(-1000003 / 97),
      static_cast<std::uint32_t>(-1000003 % 97),
      1000003u / 97u,
      1000003u % 97u,
      0xFFFFFFFFu,  // division by zero
  };
  return w;
}

Workload atomic_workload() {
  Workload w;
  w.name = "atomics";
  w.source = std::string(kOutportLoad) +
             "  li t3, 0x300\n"
             "  li t0, 100\n"
             "  sw t0, 0(t3)\n"
             "  li t1, 23\n"
             "  amoadd.w t2, t1, (t3)\n"   // t2 = 100, mem = 123
             "  sw t2, 0(a0)\n"
             "  lw t4, 0(t3)\n"
             "  sw t4, 0(a0)\n"
             "  li t5, 555\n"
             "  amoswap.w t6, t5, (t3)\n"  // t6 = 123, mem = 555
             "  sw t6, 0(a0)\n"
             "  li s0, 0x0F0\n"
             "  amoand.w s1, s0, (t3)\n"   // s1 = 555, mem = 555 & 0xF0 = 0x20
             "  sw s1, 0(a0)\n"
             "  lw s2, 0(t3)\n"
             "  sw s2, 0(a0)\n"
             "  ecall\n";
  w.expected_outputs = {100, 123, 123, 555, 555 & 0x0F0};
  return w;
}

Workload fp_dot_workload() {
  Workload w;
  w.name = "fp_dot";
  // dot({1, 2, 3, 4}, {2, 2, 2, 2}) = 20.0; every intermediate value is
  // exactly representable, so truncation rounding agrees with IEEE.
  auto bits = [](float f) { return std::bit_cast<std::uint32_t>(f); };
  w.source = std::string(kOutportLoad) +
             util::format(
                 "  li t0, 0x%08x\n  fmv.w.x f1, t0\n"   // 1.0
                 "  li t0, 0x%08x\n  fmv.w.x f2, t0\n"   // 2.0
                 "  li t0, 0x%08x\n  fmv.w.x f3, t0\n"   // 3.0
                 "  li t0, 0x%08x\n  fmv.w.x f4, t0\n"   // 4.0
                 "  fmv.w.x f5, zero\n"                   // acc = 0
                 "  fmul.s f6, f1, f2\n  fadd.s f5, f5, f6\n"
                 "  fmul.s f6, f2, f2\n  fadd.s f5, f5, f6\n"
                 "  fmul.s f6, f3, f2\n  fadd.s f5, f5, f6\n"
                 "  fmul.s f6, f4, f2\n  fadd.s f5, f5, f6\n"
                 "  fmv.x.w t1, f5\n"
                 "  sw t1, 0(a0)\n"
                 "  ecall\n",
                 bits(1.0f), bits(2.0f), bits(3.0f), bits(4.0f));
  w.expected_outputs = {std::bit_cast<std::uint32_t>(20.0f)};
  return w;
}

Workload benchmark_workload(const CoreConfig& cfg, bool light) {
  // Compose the base phases plus one per extension into a single program
  // with a combined expected-output stream.
  Workload combined;
  combined.name = "benchmark_" + util::to_lower(cfg.isa_string());
  std::vector<Workload> phases =
      light ? std::vector<Workload>{checksum_workload(6)}
            : std::vector<Workload>{checksum_workload(8),
                                    fibonacci_workload(8)};
  if (cfg.ext_m) {
    phases.push_back(matmul_workload());
    // A short division phase so the restoring divider sees live operands
    // during campaigns without dominating the cycle budget.
    Workload div_mini;
    div_mini.name = "div_mini";
    div_mini.source = std::string(kOutportLoad) +
                      "  li t0, 9177\n"
                      "  li t1, 53\n"
                      "  div t2, t0, t1\n"
                      "  sw t2, 0(a0)\n"
                      "  rem t3, t0, t1\n"
                      "  sw t3, 0(a0)\n"
                      "  ecall\n";
    div_mini.expected_outputs = {9177 / 53, 9177 % 53};
    phases.push_back(std::move(div_mini));
  }
  if (cfg.ext_a) phases.push_back(atomic_workload());
  if (cfg.ext_f) phases.push_back(fp_dot_workload());

  for (std::size_t p = 0; p < phases.size(); ++p) {
    // Re-label each phase so label names don't collide, and replace the
    // final ecall with a jump to the next phase.
    std::string body = phases[p].source;
    const std::string tag = "_p" + std::to_string(p);
    for (const char* label :
         {"init", "loop", "fib", "seed", "mul7", "mul7d", "outer", "inner",
          "innerd", "noswap", "emit"}) {
      std::string from = label;
      std::string to = label + tag;
      std::string out;
      std::size_t pos = 0;
      while (pos < body.size()) {
        const std::size_t hit = body.find(from, pos);
        if (hit == std::string::npos) {
          out += body.substr(pos);
          break;
        }
        // Only replace whole-word occurrences.
        const bool left_ok = hit == 0 || !std::isalnum(static_cast<unsigned char>(body[hit - 1]));
        const std::size_t end = hit + from.size();
        const bool right_ok =
            end >= body.size() ||
            (!std::isalnum(static_cast<unsigned char>(body[end])) && body[end] != '7');
        out += body.substr(pos, hit - pos);
        if (left_ok && right_ok) {
          out += to;
        } else {
          out += from;
        }
        pos = end;
      }
      body = std::move(out);
    }
    if (p + 1 < phases.size()) {
      const std::size_t ecall_pos = body.rfind("ecall");
      if (ecall_pos == std::string::npos) {
        throw InternalError("phase program lacks ecall");
      }
      body = body.substr(0, ecall_pos) + "nop" + body.substr(ecall_pos + 5);
    }
    combined.source += body;
    combined.expected_outputs.insert(combined.expected_outputs.end(),
                                     phases[p].expected_outputs.begin(),
                                     phases[p].expected_outputs.end());
  }
  return combined;
}

std::vector<Workload> workloads_for(const CoreConfig& cfg) {
  std::vector<Workload> out = {checksum_workload(), fibonacci_workload(),
                               sort_workload()};
  if (cfg.ext_m) {
    out.push_back(matmul_workload());
    out.push_back(divider_workload());
  }
  if (cfg.ext_a) out.push_back(atomic_workload());
  if (cfg.ext_f) out.push_back(fp_dot_workload());
  return out;
}

}  // namespace ssresf::soc
