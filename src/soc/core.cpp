#include "soc/core.h"

#include "soc/alu.h"
#include "soc/encoding.h"
#include "soc/fpu.h"
#include "soc/regfile.h"
#include "util/error.h"
#include "util/strings.h"

namespace ssresf::soc {

using namespace rv;

std::string CoreConfig::isa_string() const {
  std::string isa = xlen == 64 ? "RV64I" : "RV32I";
  if (ext_m) isa += 'M';
  if (ext_a) isa += 'A';
  if (ext_f) isa += 'F';
  if (ext_d) isa += 'D';
  return isa;
}

CoreConfig CoreConfig::from_isa(std::string_view isa) {
  CoreConfig cfg;
  const std::string s = util::to_lower(isa);
  if (util::starts_with(s, "rv64")) {
    cfg.xlen = 64;
  } else if (util::starts_with(s, "rv32")) {
    cfg.xlen = 32;
  } else {
    throw InvalidArgument("unknown ISA string '" + std::string(isa) + "'");
  }
  for (const char c : s.substr(4)) {
    switch (c) {
      case 'i':
        break;
      case 'm':
        cfg.ext_m = true;
        break;
      case 'a':
        cfg.ext_a = true;
        break;
      case 'f':
        cfg.ext_f = true;
        break;
      case 'd':
        cfg.ext_d = true;
        break;
      default:
        throw InvalidArgument("unknown ISA extension '" + std::string(1, c) + "'");
    }
  }
  if (cfg.ext_d) cfg.ext_f = true;
  return cfg;
}

namespace {

/// Binary-encode a set of one-hot lines: bit k of the output is the OR of
/// every one-hot whose index has bit k set.
Bus encode_onehot(Builder& b, std::span<const NetId> one_hot, int out_bits) {
  Bus out;
  out.reserve(static_cast<std::size_t>(out_bits));
  for (int k = 0; k < out_bits; ++k) {
    std::vector<NetId> terms;
    for (std::size_t i = 0; i < one_hot.size(); ++i) {
      if ((i >> k) & 1) terms.push_back(one_hot[i]);
    }
    out.push_back(terms.empty() ? b.zero() : b.or_reduce(terms));
  }
  return out;
}

}  // namespace

CoreIO build_core(Builder& b, const CoreConfig& cfg, NetId clk, NetId rstn,
                  const Bus& instr, const Bus& data_rdata,
                  const std::string& name) {
  if (cfg.xlen != 32 && cfg.xlen != 64) {
    throw InvalidArgument("core xlen must be 32 or 64");
  }
  if (instr.size() != 32) throw InvalidArgument("instr bus must be 32 bits");
  const int W = cfg.xlen;
  if (data_rdata.size() != static_cast<std::size_t>(W)) {
    throw InvalidArgument("data_rdata bus must be xlen bits");
  }

  const auto core_scope = b.scope(name, netlist::ModuleClass::kCpu);

  // --- program counter (next value driven at the end) ------------------------
  const Bus next_pc = b.wire_bus(W);
  Bus pc;
  {
    const auto s = b.scope("fetch");
    pc = b.register_bus(next_pc, clk, rstn, "pc");
  }

  // --- instruction fields ------------------------------------------------------
  const Bus opcode = slice(instr, 0, 7);
  const Bus rd_sel = slice(instr, 7, 5);
  const Bus funct3 = slice(instr, 12, 3);
  const Bus rs1_sel = slice(instr, 15, 5);
  const Bus rs2_sel = slice(instr, 20, 5);
  const Bus funct7 = slice(instr, 25, 7);
  const Bus funct5 = slice(instr, 27, 5);

  // --- decode ---------------------------------------------------------------------
  const auto dec_scope_token = b.scope("decode");
  auto opcode_is = [&](std::uint32_t code) {
    return equal(b, opcode, bus_constant(b, 7, code));
  };
  const NetId is_load = opcode_is(kOpLoad);
  const NetId is_store = opcode_is(kOpStore);
  const NetId is_opimm = opcode_is(kOpImm);
  const NetId is_opr = opcode_is(kOp);
  const NetId is_lui = opcode_is(kOpLui);
  const NetId is_auipc = opcode_is(kOpAuipc);
  const NetId is_branch = opcode_is(kOpBranch);
  const NetId is_jal = opcode_is(kOpJal);
  const NetId is_jalr = opcode_is(kOpJalr);
  const NetId is_system = opcode_is(kOpSystem);
  const NetId is_opimm32 = W == 64 ? opcode_is(kOpImm32) : b.zero();
  const NetId is_op32 = W == 64 ? opcode_is(kOp32) : b.zero();
  const NetId is_amo = cfg.ext_a ? opcode_is(kOpAmo) : b.zero();
  const NetId is_loadfp = cfg.ext_f ? opcode_is(kOpLoadFp) : b.zero();
  const NetId is_storefp = cfg.ext_f ? opcode_is(kOpStoreFp) : b.zero();
  const NetId is_opfp = cfg.ext_f ? opcode_is(kOpFp) : b.zero();

  const std::vector<NetId> f3 = decode(b, funct3);
  const NetId funct7_b5 = funct7[5];
  const NetId is_mul =
      cfg.ext_m ? b.and2(is_opr, equal(b, funct7, bus_constant(b, 7, 1)))
                : b.zero();

  // Sticky halt on ecall/ebreak.
  const NetId halt_w = b.wire("halt_d");
  const NetId halt_q = b.dffr(halt_w, clk, rstn, "halt_ff").q;
  b.drive(halt_w, b.or2(halt_q, is_system));
  const NetId running = b.and2(b.inv(halt_q), rstn);

  // --- immediates -------------------------------------------------------------------
  const Bus imm_i = sign_extend(slice(instr, 20, 12), W);
  const Bus imm_s = sign_extend(concat(slice(instr, 7, 5), slice(instr, 25, 7)), W);
  Bus imm_b_raw;
  imm_b_raw.push_back(b.zero());
  for (int i = 8; i <= 11; ++i) imm_b_raw.push_back(instr[static_cast<std::size_t>(i)]);
  for (int i = 25; i <= 30; ++i) imm_b_raw.push_back(instr[static_cast<std::size_t>(i)]);
  imm_b_raw.push_back(instr[7]);
  imm_b_raw.push_back(instr[31]);
  const Bus imm_b = sign_extend(imm_b_raw, W);
  Bus imm_u_raw = bus_constant(b, 12, 0);
  for (int i = 12; i <= 31; ++i) imm_u_raw.push_back(instr[static_cast<std::size_t>(i)]);
  const Bus imm_u = sign_extend(imm_u_raw, W);
  Bus imm_j_raw;
  imm_j_raw.push_back(b.zero());
  for (int i = 21; i <= 30; ++i) imm_j_raw.push_back(instr[static_cast<std::size_t>(i)]);
  imm_j_raw.push_back(instr[20]);
  for (int i = 12; i <= 19; ++i) imm_j_raw.push_back(instr[static_cast<std::size_t>(i)]);
  imm_j_raw.push_back(instr[31]);
  const Bus imm_j = sign_extend(imm_j_raw, W);

  // --- register file -----------------------------------------------------------------
  const NetId is_fmv_to_x =
      cfg.ext_f
          ? b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpMvXW)))
          : b.zero();
  const NetId is_fmv_to_f =
      cfg.ext_f
          ? b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpMvWX)))
          : b.zero();
  const NetId reg_we = b.and2(
      running,
      b.or_reduce(std::vector<NetId>{is_load, is_opimm, is_opr, is_lui,
                                     is_auipc, is_jal, is_jalr, is_opimm32,
                                     is_op32, is_amo, is_fmv_to_x}));
  const Bus rd_wdata = b.wire_bus(W);
  const Bus read_sels[2] = {rs1_sel, rs2_sel};
  const auto reads =
      build_register_file(b, clk, rstn, reg_we, rd_sel, rd_wdata, read_sels,
                          /*reg0_is_zero=*/true, "regfile");
  const Bus& rs1_data = reads[0];
  const Bus& rs2_data = reads[1];

  // --- ALU ----------------------------------------------------------------------------
  const NetId is_alu_funct = b.or2(is_opimm, b.and2(is_opr, b.inv(is_mul)));
  const NetId arith_sub = b.and2(is_opr, funct7_b5);
  std::vector<NetId> oh(kNumAluOps, b.zero());
  oh[static_cast<int>(AluOp::kAdd)] = b.or_reduce(std::vector<NetId>{
      is_load, is_store, is_auipc, is_jalr, is_amo, is_loadfp, is_storefp,
      b.and2(is_alu_funct, b.and2(f3[0], b.inv(arith_sub)))});
  oh[static_cast<int>(AluOp::kSub)] =
      b.and2(is_alu_funct, b.and2(f3[0], arith_sub));
  oh[static_cast<int>(AluOp::kSll)] = b.and2(is_alu_funct, f3[1]);
  oh[static_cast<int>(AluOp::kSlt)] = b.and2(is_alu_funct, f3[2]);
  oh[static_cast<int>(AluOp::kSltu)] = b.and2(is_alu_funct, f3[3]);
  oh[static_cast<int>(AluOp::kXor)] = b.and2(is_alu_funct, f3[4]);
  oh[static_cast<int>(AluOp::kSrl)] =
      b.and2(is_alu_funct, b.and2(f3[5], b.inv(funct7_b5)));
  oh[static_cast<int>(AluOp::kSra)] =
      b.and2(is_alu_funct, b.and2(f3[5], funct7_b5));
  oh[static_cast<int>(AluOp::kOr)] = b.and2(is_alu_funct, f3[6]);
  oh[static_cast<int>(AluOp::kAnd)] = b.and2(is_alu_funct, f3[7]);
  oh[static_cast<int>(AluOp::kPassB)] = is_lui;
  const Bus alu_op = encode_onehot(b, oh, kAluOpBits);

  const Bus alu_a = bus_mux(b, is_auipc, rs1_data, pc);
  Bus imm_sel = bus_mux(b, is_store, imm_i, imm_s);
  const NetId use_u = b.or2(is_lui, is_auipc);
  imm_sel = bus_mux(b, use_u, imm_sel, imm_u);
  Bus alu_b = bus_mux(b, b.or2(is_opr, is_op32), imm_sel, rs2_data);
  if (cfg.ext_a) {
    alu_b = bus_mux(b, is_amo, alu_b, bus_constant(b, W, 0));  // addr = rs1
  }
  const Bus alu_result = build_alu(b, alu_a, alu_b, alu_op);

  // --- M extension -----------------------------------------------------------------------
  Bus mul_result;
  if (cfg.ext_m) {
    const auto s = b.scope("muldiv");
    // Operand isolation: the array multiplier and restoring divider are the
    // largest combinational blocks in the core; masking their operands to
    // zero unless the matching instruction executes keeps them electrically
    // quiet (standard low-power practice, and it keeps event-driven
    // simulation activity proportional to real work). funct3 bit 2 selects
    // the divide group within the M opcodes.
    const NetId is_div_group = b.and2(is_mul, funct3[2]);
    const NetId is_mul_group = b.and2(is_mul, b.inv(funct3[2]));
    const Bus m_rs1 = bus_mask(b, rs1_data, is_mul_group);
    const Bus m_rs2 = bus_mask(b, rs2_data, is_mul_group);
    const Bus d_rs1 = bus_mask(b, rs1_data, is_div_group);
    const Bus d_rs2 = bus_mask(b, rs2_data, is_div_group);
    const Bus product = multiply(b, m_rs1, m_rs2);
    const Bus mul_lo = slice(product, 0, W);
    const Bus mulhu = slice(product, W, W);
    const Bus corr1 = bus_mask(b, m_rs2, m_rs1.back());
    const Bus corr2 = bus_mask(b, m_rs1, m_rs2.back());
    const Bus mulh = subtract(b, subtract(b, mulhu, corr1).sum, corr2).sum;
    const Bus mulhsu = subtract(b, mulhu, corr1).sum;
    const DivResult div_s = divide_signed(b, d_rs1, d_rs2);
    const DivResult div_u = divide_unsigned(b, d_rs1, d_rs2);
    const Bus options[8] = {mul_lo,         mulh,           mulhsu,
                            mulhu,          div_s.quotient, div_u.quotient,
                            div_s.remainder, div_u.remainder};
    mul_result = bus_mux_tree(b, funct3, options);
  }

  // --- RV64 W-ops ---------------------------------------------------------------------------
  Bus w_result;
  if (W == 64) {
    const auto s = b.scope("aluw");
    const Bus a32 = slice(rs1_data, 0, 32);
    const Bus b32 =
        bus_mux(b, is_op32, slice(imm_i, 0, 32), slice(rs2_data, 0, 32));
    const NetId w_sub = b.and2(is_op32, funct7_b5);
    std::vector<NetId> ohw(kNumAluOps, b.zero());
    ohw[static_cast<int>(AluOp::kAdd)] = b.and2(f3[0], b.inv(w_sub));
    ohw[static_cast<int>(AluOp::kSub)] = b.and2(f3[0], w_sub);
    ohw[static_cast<int>(AluOp::kSll)] = f3[1];
    ohw[static_cast<int>(AluOp::kSrl)] = b.and2(f3[5], b.inv(funct7_b5));
    ohw[static_cast<int>(AluOp::kSra)] = b.and2(f3[5], funct7_b5);
    const Bus w_op = encode_onehot(b, ohw, kAluOpBits);
    const Bus out32 = build_alu(b, a32, b32, w_op);
    w_result = sign_extend(out32, 64);
  }

  // --- branches ----------------------------------------------------------------------------------
  const NetId br_eq = equal(b, rs1_data, rs2_data);
  const NetId br_lt = less_signed(b, rs1_data, rs2_data);
  const NetId br_ltu = less_unsigned(b, rs1_data, rs2_data);
  const NetId take = b.or_reduce(std::vector<NetId>{
      b.and2(f3[0], br_eq), b.and2(f3[1], b.inv(br_eq)),
      b.and2(f3[4], br_lt), b.and2(f3[5], b.inv(br_lt)),
      b.and2(f3[6], br_ltu), b.and2(f3[7], b.inv(br_ltu))});
  const NetId branch_taken = b.and2(is_branch, take);

  // --- next PC -----------------------------------------------------------------------------------
  const Bus pc_plus4 = add(b, pc, bus_constant(b, W, 4));
  const Bus pc_branch = add(b, pc, imm_b);
  const Bus pc_jal = add(b, pc, imm_j);
  Bus jalr_target = alu_result;
  jalr_target[0] = b.zero();
  Bus npc = pc_plus4;
  npc = bus_mux(b, branch_taken, npc, pc_branch);
  npc = bus_mux(b, is_jal, npc, pc_jal);
  npc = bus_mux(b, is_jalr, npc, jalr_target);
  const NetId hold = b.inv(running);
  npc = bus_mux(b, hold, npc, pc);
  b.drive_bus(next_pc, npc);

  // --- data memory interface ------------------------------------------------------------------------
  const auto mem_scope_token = b.scope("lsu");
  const int off_bits = W == 64 ? 3 : 2;
  const Bus byte_off = slice(alu_result, 0, off_bits);
  Bus shamt = bus_constant(b, 3, 0);
  shamt.insert(shamt.end(), byte_off.begin(), byte_off.end());
  const Bus shifted_r = shift_right(b, data_rdata, shamt, b.zero());

  const Bus lb = sign_extend(slice(shifted_r, 0, 8), W);
  const Bus lbu = zero_extend(b, slice(shifted_r, 0, 8), W);
  const Bus lh = sign_extend(slice(shifted_r, 0, 16), W);
  const Bus lhu = zero_extend(b, slice(shifted_r, 0, 16), W);
  Bus lw, lwu, ld_r;
  if (W == 64) {
    lw = sign_extend(slice(shifted_r, 0, 32), W);
    lwu = zero_extend(b, slice(shifted_r, 0, 32), W);
    ld_r = shifted_r;
  } else {
    lw = shifted_r;
    lwu = shifted_r;
    ld_r = shifted_r;
  }
  const Bus load_options[8] = {lb, lh, lw, ld_r, lbu, lhu, lwu, lhu};
  const Bus load_result = bus_mux_tree(b, funct3, load_options);

  // FP register file and units (operands needed for store data below).
  Bus fp_rs1, fp_rs2;
  Bus fp_wdata;
  NetId fp_we = b.zero();
  const int fpw = cfg.ext_d ? 64 : 32;
  if (cfg.ext_f) {
    const NetId is_fadd_s =
        b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpAddS)));
    const NetId is_fmul_s =
        b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpMulS)));
    NetId is_fadd_d = b.zero();
    NetId is_fmul_d = b.zero();
    if (cfg.ext_d) {
      is_fadd_d = b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpAddD)));
      is_fmul_d = b.and2(is_opfp, equal(b, funct7, bus_constant(b, 7, kFpMulD)));
    }
    fp_we = b.and2(running,
                   b.or_reduce(std::vector<NetId>{is_loadfp, is_fmv_to_f,
                                                  is_fadd_s, is_fmul_s,
                                                  is_fadd_d, is_fmul_d}));
    const Bus fp_wdata_w = b.wire_bus(fpw);
    const Bus fp_read_sels[2] = {rs1_sel, rs2_sel};
    const auto fp_reads =
        build_register_file(b, clk, rstn, fp_we, rd_sel, fp_wdata_w,
                            fp_read_sels, /*reg0_is_zero=*/false, "fpregfile");
    fp_rs1 = fp_reads[0];
    fp_rs2 = fp_reads[1];

    const auto fpu_scope = b.scope("fpu");
    // Operand isolation per precision, as in the muldiv unit: the single-
    // and double-precision datapaths only see operands when their own
    // arithmetic executes (moves and loads leave both quiet).
    const NetId fp_s_active = b.or2(is_fadd_s, is_fmul_s);
    const Bus fp_a32 = bus_mask(b, slice(fp_rs1, 0, 32), fp_s_active);
    const Bus fp_b32 = bus_mask(b, slice(fp_rs2, 0, 32), fp_s_active);
    const Bus fadd_s = build_fp_adder(b, fp_a32, fp_b32, FpFormat::single());
    const Bus fmul_s =
        build_fp_multiplier(b, fp_a32, fp_b32, FpFormat::single());
    Bus result = zero_extend(b, slice(load_result, 0, 32), fpw);  // flw
    result = bus_mux(b, is_fmv_to_f,
                     result, zero_extend(b, slice(rs1_data, 0, 32), fpw));
    result = bus_mux(b, is_fadd_s, result, zero_extend(b, fadd_s, fpw));
    result = bus_mux(b, is_fmul_s, result, zero_extend(b, fmul_s, fpw));
    if (cfg.ext_d) {
      const NetId fp_d_active = b.or2(is_fadd_d, is_fmul_d);
      const Bus fp_a64 = bus_mask(b, fp_rs1, fp_d_active);
      const Bus fp_b64 = bus_mask(b, fp_rs2, fp_d_active);
      const Bus fadd_d = build_fp_adder(b, fp_a64, fp_b64, FpFormat::double_());
      const Bus fmul_d =
          build_fp_multiplier(b, fp_a64, fp_b64, FpFormat::double_());
      result = bus_mux(b, is_fadd_d, result, fadd_d);
      result = bus_mux(b, is_fmul_d, result, fmul_d);
    }
    b.drive_bus(fp_wdata_w, result);
    fp_wdata = fp_wdata_w;
  }

  // Store path: sub-word read-modify-write merge on the full word.
  Bus store_src = rs2_data;
  if (cfg.ext_f) {
    store_src = bus_mux(b, is_storefp, store_src,
                        zero_extend(b, slice(fp_rs2, 0, 32), W));
  }
  const Bus shifted_w = shift_left(b, store_src, shamt);
  const Bus mask8 = bus_constant(b, W, 0xFF);
  const Bus mask16 = bus_constant(b, W, 0xFFFF);
  const Bus mask32 = bus_constant(b, W, 0xFFFFFFFFull);
  const Bus mask64 = bus_constant(b, W, ~std::uint64_t{0});
  const Bus mask_options[4] = {mask8, mask16, mask32,
                               W == 64 ? mask64 : mask32};
  const Bus mask_base = bus_mux_tree(b, slice(funct3, 0, 2), mask_options);
  const Bus shifted_mask = shift_left(b, mask_base, shamt);
  const Bus merged =
      bus_or(b, bus_and(b, data_rdata, bus_not(b, shifted_mask)),
             bus_and(b, shifted_w, shifted_mask));

  // AMO data path (full-word operations).
  Bus data_wdata = merged;
  NetId amo_writes = b.zero();
  Bus amo_rd;
  if (cfg.ext_a) {
    const auto amo_scope = b.scope("amo");
    const NetId is_lr = equal(b, funct5, bus_constant(b, 5, kAmoLr));
    const NetId is_sc = equal(b, funct5, bus_constant(b, 5, kAmoSc));
    const NetId is_swap = equal(b, funct5, bus_constant(b, 5, kAmoSwap));
    const NetId is_add_a = equal(b, funct5, bus_constant(b, 5, kAmoAdd));
    const NetId is_xor_a = equal(b, funct5, bus_constant(b, 5, kAmoXor));
    const NetId is_or_a = equal(b, funct5, bus_constant(b, 5, kAmoOr));
    const NetId is_and_a = equal(b, funct5, bus_constant(b, 5, kAmoAnd));
    Bus amo_new = add(b, data_rdata, rs2_data);  // amoadd default
    amo_new = bus_mux(b, is_swap, amo_new, rs2_data);
    amo_new = bus_mux(b, is_sc, amo_new, rs2_data);
    amo_new = bus_mux(b, is_xor_a, amo_new, bus_xor(b, data_rdata, rs2_data));
    amo_new = bus_mux(b, is_or_a, amo_new, bus_or(b, data_rdata, rs2_data));
    amo_new = bus_mux(b, is_and_a, amo_new, bus_and(b, data_rdata, rs2_data));
    data_wdata = bus_mux(b, is_amo, merged, amo_new);
    amo_writes = b.and2(is_amo, b.inv(is_lr));
    (void)is_add_a;
    // rd value: loaded word, except sc.w returns 0 (always succeeds).
    amo_rd = bus_mask(b, data_rdata, b.inv(is_sc));
  }

  const NetId data_we = b.and2(
      running, b.or_reduce(std::vector<NetId>{is_store, is_storefp, amo_writes}));
  const NetId data_re = b.and2(
      running, b.or_reduce(std::vector<NetId>{is_load, is_store, is_amo,
                                              is_loadfp, is_storefp}));

  // --- writeback ---------------------------------------------------------------------------------------
  Bus wb = alu_result;
  wb = bus_mux(b, is_load, wb, load_result);
  wb = bus_mux(b, b.or2(is_jal, is_jalr), wb, pc_plus4);
  if (cfg.ext_m) wb = bus_mux(b, is_mul, wb, mul_result);
  if (W == 64) wb = bus_mux(b, b.or2(is_op32, is_opimm32), wb, w_result);
  if (cfg.ext_a) wb = bus_mux(b, is_amo, wb, amo_rd);
  if (cfg.ext_f) {
    wb = bus_mux(b, is_fmv_to_x, wb,
                 zero_extend(b, slice(fp_rs1, 0, 32), W));
  }
  b.drive_bus(rd_wdata, wb);

  CoreIO io;
  io.imem_addr = pc;
  io.data_addr = alu_result;
  io.data_re = data_re;
  io.data_we = data_we;
  io.data_wdata = data_wdata;
  io.halt = halt_q;
  return io;
}

}  // namespace ssresf::soc
