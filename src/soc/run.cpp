#include "soc/run.h"

#include "netlist/stats.h"
#include "util/error.h"

namespace ssresf::soc {

std::uint64_t pick_clock_period(const netlist::Netlist& netlist) {
  const auto crit =
      static_cast<std::uint64_t>(netlist::estimate_critical_path_ps(netlist));
  std::uint64_t period = crit + crit / 4 + 100;  // 25% margin + jitter pad
  period += period % 2;                          // even, for clean half-periods
  return period;
}

namespace {
sim::TestbenchConfig make_tb_config(const SocModel& model,
                                    std::uint64_t period) {
  sim::TestbenchConfig cfg;
  cfg.clk = model.clk;
  cfg.rstn = model.rstn;
  cfg.monitored = model.monitored;
  cfg.clock_period_ps = period == 0 ? pick_clock_period(model.netlist) : period;
  cfg.reset_cycles = 4;
  return cfg;
}
}  // namespace

SocRunner::SocRunner(const SocModel& model, sim::EngineKind kind,
                     std::uint64_t clock_period_ps)
    : model_(&model),
      engine_(sim::make_engine(kind, model.netlist)),
      testbench_(*engine_, make_tb_config(model, clock_period_ps)) {}

int SocRunner::run_until_halt(int max_cycles, int check_every) {
  int run_cycles = 0;
  while (run_cycles < max_cycles) {
    const int step = std::min(check_every, max_cycles - run_cycles);
    testbench_.run_cycles(step);
    run_cycles += step;
    if (halted()) break;
  }
  return run_cycles;
}

bool SocRunner::halted() const {
  return engine_->value(model_->monitored[0]) == netlist::Logic::L1;
}

std::vector<std::uint32_t> SocRunner::emitted_words() const {
  return decode_outputs(testbench_.trace());
}

std::vector<std::uint32_t> SocRunner::decode_outputs(
    const sim::OutputTrace& trace) {
  // Monitored layout: [halt, out_valid, out_core, out_data[0..31]].
  std::vector<std::uint32_t> words;
  for (std::size_t c = 0; c < trace.num_cycles(); ++c) {
    const auto& sample = trace.cycle(c);
    if (sample.size() < 35) throw InvalidArgument("trace is not a SoC trace");
    if (sample[1] != netlist::Logic::L1) continue;
    std::uint32_t word = 0;
    for (int i = 0; i < 32; ++i) {
      if (sample[static_cast<std::size_t>(3 + i)] == netlist::Logic::L1) {
        word |= 1u << i;
      }
    }
    words.push_back(word);
  }
  return words;
}

}  // namespace ssresf::soc
