#pragma once

#include "soc/datapath.h"

namespace ssresf::soc {

/// ALU operation select values (index into the result mux tree).
enum class AluOp : std::uint8_t {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kSlt = 5,
  kSltu = 6,
  kSll = 7,
  kSrl = 8,
  kSra = 9,
  kPassB = 10,  // for LUI
};
inline constexpr int kNumAluOps = 11;
inline constexpr int kAluOpBits = 4;

/// Builds a single-cycle RISC-V ALU. All kNumAluOps results are computed and
/// a mux tree picks the one addressed by `op_sel` (kAluOpBits wide), like a
/// synthesized single-cycle datapath. Shift amounts come from the low
/// log2(width) bits of `b`.
[[nodiscard]] Bus build_alu(Builder& builder, const Bus& a, const Bus& b,
                            const Bus& op_sel);

}  // namespace ssresf::soc
