#include "soc/soc.h"

#include "util/error.h"
#include "util/strings.h"

namespace ssresf::soc {

using netlist::MemoryInfo;
using netlist::MemTech;
using netlist::ModuleClass;

std::string SocConfig::mem_size_string() const {
  if (mem_bytes >= 1024 * 1024) {
    return std::to_string(mem_bytes / (1024 * 1024)) + "MB";
  }
  return std::to_string(mem_bytes / 1024) + "KB";
}

std::vector<SocConfig> pulp_soc_table() {
  auto row = [](int index, MemTech tech, std::uint64_t mem_bytes,
                BusProtocol bus, int width, const char* isa, int cores) {
    SocConfig cfg;
    cfg.name = "PULP SoC" + std::to_string(index);
    cfg.mem_tech = tech;
    cfg.mem_bytes = mem_bytes;
    cfg.bus = bus;
    cfg.bus_width_bits = width;
    cfg.cpu_isa = isa;
    cfg.num_cores = cores;
    return cfg;
  };
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = 1024 * 1024;
  return {
      row(1, MemTech::kSram, 64 * kKiB, BusProtocol::kApb, 8, "RV32I", 1),
      row(2, MemTech::kDram, 64 * kKiB, BusProtocol::kApb, 16, "RV32I", 2),
      row(3, MemTech::kSram, 256 * kKiB, BusProtocol::kAhb, 32, "RV32IM", 1),
      row(4, MemTech::kDram, 256 * kKiB, BusProtocol::kAhb, 64, "RV32IM", 2),
      row(5, MemTech::kSram, 1 * kMiB, BusProtocol::kAxi, 128, "RV32IMF", 1),
      row(6, MemTech::kDram, 1 * kMiB, BusProtocol::kAxi, 256, "RV32IMF", 2),
      row(7, MemTech::kSram, 2 * kMiB, BusProtocol::kApb, 512, "RV32IMAFD", 1),
      row(8, MemTech::kDram, 2 * kMiB, BusProtocol::kApb, 1024, "RV32IMAFD", 2),
      row(9, MemTech::kSram, 4 * kMiB, BusProtocol::kAhb, 2048, "RV64I", 1),
      row(10, MemTech::kRadHardSram, 4 * kMiB, BusProtocol::kAhb, 4096, "RV64I",
          2),
  };
}

SocModel build_soc(const SocConfig& cfg, std::span<const Program> programs) {
  if (cfg.num_cores < 1 || cfg.num_cores > 4) {
    throw InvalidArgument("num_cores must be in [1, 4]");
  }
  if (programs.empty()) throw InvalidArgument("need at least one program");
  const CoreConfig core_cfg = CoreConfig::from_isa(cfg.cpu_isa);
  const int W = core_cfg.xlen;
  const int fabric_width = std::max(cfg.bus_width_bits, W);
  const std::uint64_t dmem_bytes =
      cfg.mem_bytes / static_cast<std::uint64_t>(cfg.num_cores);
  const std::uint64_t dmem_words = dmem_bytes / static_cast<std::uint64_t>(W / 8);
  if (dmem_words == 0 || (dmem_words & (dmem_words - 1)) != 0) {
    throw InvalidArgument("per-core data memory must be a power-of-two words");
  }
  int dmem_abits = 0;
  while ((1ull << dmem_abits) < dmem_words) ++dmem_abits;
  int imem_abits = 0;
  while ((1u << imem_abits) < cfg.imem_words) ++imem_abits;

  Builder b("soc");
  SocModel model;
  model.config = cfg;
  model.xlen = W;
  model.clk = b.input("clk");
  model.rstn = b.input("rstn");

  std::vector<CoreIO> cores;
  std::vector<BusSegmentIO> segments;
  std::vector<Bus> core_rdata_wires;

  for (int i = 0; i < cfg.num_cores; ++i) {
    const std::string suffix = std::to_string(i);
    const Bus instr = b.wire_bus(32, "instr" + suffix);
    const Bus rdata = b.wire_bus(W, "rdata" + suffix);
    core_rdata_wires.push_back(rdata);
    const CoreIO core = build_core(b, core_cfg, model.clk, model.rstn, instr,
                                   rdata, "cpu" + suffix);

    // Instruction memory: read-only SRAM macro initialised with the program.
    {
      const auto scope = b.scope("imem" + suffix, ModuleClass::kMemory);
      const Program& prog =
          programs[static_cast<std::size_t>(i) < programs.size()
                       ? static_cast<std::size_t>(i)
                       : programs.size() - 1];
      if (prog.words.size() > cfg.imem_words) {
        throw InvalidArgument("program does not fit in instruction memory");
      }
      MemoryInfo info;
      info.words = cfg.imem_words;
      info.width = 32;
      info.tech = MemTech::kSram;
      info.init.assign(cfg.imem_words, 0);
      for (std::size_t w = 0; w < prog.words.size(); ++w) {
        info.init[w] = prog.words[w];
      }
      const Bus iaddr = slice(core.imem_addr, 2, imem_abits);
      const Bus zero_w = bus_constant(b, 32, 0);
      const auto mem = b.memory(std::move(info), model.clk, b.one(), b.zero(),
                                iaddr, iaddr, zero_w, "imem");
      b.drive_bus(instr, mem.rdata);
      model.imem_cells.push_back(mem.cell);
    }

    // Data memory macro, fed by the bus segment through forward-declared
    // wires.
    const Bus dmem_raddr = b.wire_bus(dmem_abits);
    const Bus dmem_waddr = b.wire_bus(dmem_abits);
    const Bus dmem_wdata = b.wire_bus(W);
    const NetId dmem_we = b.wire("dmem_we" + suffix);
    Bus dmem_rdata;
    {
      const auto scope = b.scope("dmem" + suffix, ModuleClass::kMemory);
      MemoryInfo info;
      info.words = static_cast<std::uint32_t>(dmem_words);
      info.width = static_cast<std::uint8_t>(W);
      info.tech = cfg.mem_tech;
      const auto mem = b.memory(std::move(info), model.clk, b.one(), dmem_we,
                                dmem_raddr, dmem_waddr, dmem_wdata, "dmem");
      dmem_rdata = mem.rdata;
      model.dmem_cells.push_back(mem.cell);
    }

    segments.push_back(build_bus_segment(
        b, cfg.bus, fabric_width, model.clk, model.rstn, core, W, dmem_rdata,
        dmem_raddr, dmem_waddr, dmem_wdata, dmem_we, "bus" + suffix));
    cores.push_back(core);
  }

  // --- MMIO posting buffers + arbiter (part of the bus fabric) -----------------
  std::vector<NetId> grant(static_cast<std::size_t>(cfg.num_cores));
  std::vector<Bus> mmio_data(static_cast<std::size_t>(cfg.num_cores));
  {
    const auto scope = b.scope("busmmio", ModuleClass::kBus);
    std::vector<NetId> valid(static_cast<std::size_t>(cfg.num_cores));
    std::vector<NetId> valid_d(static_cast<std::size_t>(cfg.num_cores));
    for (int i = 0; i < cfg.num_cores; ++i) {
      const std::string suffix = std::to_string(i);
      valid_d[static_cast<std::size_t>(i)] = b.wire("mmio_v_d" + suffix);
      valid[static_cast<std::size_t>(i)] =
          b.dffr(valid_d[static_cast<std::size_t>(i)], model.clk, model.rstn,
                 "mmio_v" + suffix)
              .q;
      mmio_data[static_cast<std::size_t>(i)] = b.register_bus_en(
          segments[static_cast<std::size_t>(i)].mmio_wdata, model.clk,
          model.rstn, segments[static_cast<std::size_t>(i)].mmio_we,
          "mmio_d" + suffix);
    }
    if (cfg.num_cores == 1) {
      grant[0] = valid[0];
    } else {
      // Rotating-priority arbiter between the (up to 4) requesters; with two
      // requesters this is classic round robin.
      const NetId turn_d = b.wire("mmio_turn_d");
      const NetId turn = b.dffr(turn_d, model.clk, model.rstn, "mmio_turn").q;
      b.drive(turn_d, b.inv(turn));
      const NetId v0 = valid[0];
      const NetId v1 = b.or_reduce(std::vector<NetId>(valid.begin() + 1,
                                                      valid.end()));
      const NetId g0 = b.and2(v0, b.or2(b.inv(turn), b.inv(v1)));
      grant[0] = g0;
      // Remaining requesters share the non-core0 slot with fixed priority.
      NetId others_taken = g0;
      for (std::size_t i = 1; i < valid.size(); ++i) {
        grant[i] = b.and2(valid[i], b.inv(others_taken));
        others_taken = b.or2(others_taken, grant[i]);
      }
    }
    for (int i = 0; i < cfg.num_cores; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      b.drive(valid_d[idx],
              b.or2(segments[idx].mmio_we,
                    b.and2(valid[idx], b.inv(grant[idx]))));
    }
  }

  // --- peripherals --------------------------------------------------------------
  Bus timer_value;
  NetId out_valid, out_core;
  Bus out_data;
  {
    const auto scope = b.scope("periph", ModuleClass::kPeripheral);
    // Free-running 32-bit cycle counter, readable at any MMIO load address.
    const Bus cnt_d = b.wire_bus(32);
    timer_value = b.register_bus(cnt_d, model.clk, model.rstn, "timer");
    b.drive_bus(cnt_d, add(b, timer_value, bus_constant(b, 32, 1)));

    // Output port: captures granted MMIO stores.
    const NetId any_grant = b.or_reduce(grant);
    Bus sel_data = mmio_data[0];
    for (std::size_t i = 1; i < mmio_data.size(); ++i) {
      sel_data = bus_mux(b, grant[i], sel_data, mmio_data[i]);
    }
    out_data = b.register_bus_en(sel_data, model.clk, model.rstn, any_grant,
                                 "out_data");
    NetId from_other = b.zero();
    for (std::size_t i = 1; i < grant.size(); ++i) {
      from_other = b.or2(from_other, grant[i]);
    }
    out_core = b.dffe(from_other, model.clk, model.rstn, any_grant, "out_core").q;
    out_valid = b.dffr(any_grant, model.clk, model.rstn, "out_valid").q;
  }

  // --- core read-data return: dmem path or timer --------------------------------
  for (int i = 0; i < cfg.num_cores; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const Bus timer_ext = zero_extend(b, timer_value, W);
    const Bus rdata = bus_mux(b, segments[idx].is_mmio,
                              segments[idx].rdata_to_core, timer_ext);
    b.drive_bus(core_rdata_wires[idx], rdata);
  }

  // --- primary outputs ------------------------------------------------------------
  std::vector<NetId> halts;
  halts.reserve(cores.size());
  for (const CoreIO& core : cores) halts.push_back(core.halt);
  const NetId halt_all = b.and_reduce(halts);
  b.output(halt_all, "halt");
  b.output(out_valid, "out_valid");
  b.output(out_core, "out_core");
  b.output_bus(out_data, "out_data");

  model.monitored.push_back(halt_all);
  model.monitored.push_back(out_valid);
  model.monitored.push_back(out_core);
  model.monitored.insert(model.monitored.end(), out_data.begin(),
                         out_data.end());

  model.netlist = b.finish();
  return model;
}

}  // namespace ssresf::soc
