#pragma once

#include <memory>

#include "sim/engine.h"
#include "sim/testbench.h"
#include "soc/soc.h"

namespace ssresf::soc {

/// Convenience wrapper: engine + testbench for a built SoC, with helpers to
/// run programs and decode the output-port stream from the trace.
/// Clock period for a netlist: estimated critical path plus margin (a
/// single-cycle core's longest path — e.g. the restoring divider — bounds
/// its frequency, exactly as in hardware). Clocking faster than this makes
/// the event-driven engine mis-sample unsettled data: a setup violation.
[[nodiscard]] std::uint64_t pick_clock_period(const netlist::Netlist& netlist);

class SocRunner {
 public:
  /// clock_period_ps == 0 selects pick_clock_period(model.netlist).
  SocRunner(const SocModel& model, sim::EngineKind kind,
            std::uint64_t clock_period_ps = 0);

  /// Apply the reset sequence (counts toward the trace).
  void reset() { testbench_.reset(); }
  void run(int cycles) { testbench_.run_cycles(cycles); }

  /// Runs until every core has halted or `max_cycles` have elapsed
  /// (post-reset); returns the number of cycles actually run.
  int run_until_halt(int max_cycles, int check_every = 32);

  [[nodiscard]] bool halted() const;
  [[nodiscard]] const sim::OutputTrace& trace() const {
    return testbench_.trace();
  }

  /// Words captured by the output port, in emission order (cycles where
  /// out_valid sampled 1).
  [[nodiscard]] std::vector<std::uint32_t> emitted_words() const;

  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] sim::Testbench& testbench() { return testbench_; }
  [[nodiscard]] const SocModel& model() const { return *model_; }

  /// Decodes the output words of a finished trace (same layout as
  /// emitted_words) — usable on traces from other runners.
  [[nodiscard]] static std::vector<std::uint32_t> decode_outputs(
      const sim::OutputTrace& trace);

 private:
  const SocModel* model_;
  std::unique_ptr<sim::Engine> engine_;
  sim::Testbench testbench_;
};

}  // namespace ssresf::soc
