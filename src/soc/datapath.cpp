#include "soc/datapath.h"

#include "util/error.h"

namespace ssresf::soc {

using ssresf::InvalidArgument;

namespace {
void check_same_width(const Bus& a, const Bus& b, const char* what) {
  if (a.size() != b.size()) {
    throw InvalidArgument(std::string(what) + ": width mismatch (" +
                          std::to_string(a.size()) + " vs " +
                          std::to_string(b.size()) + ")");
  }
}
}  // namespace

Bus bus_constant(Builder& b, int width, std::uint64_t value) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    out.push_back(b.constant(i < 64 && ((value >> i) & 1)));
  }
  return out;
}

Bus replicate_net(int width, NetId net) {
  return Bus(static_cast<std::size_t>(width), net);
}

Bus slice(const Bus& a, int lo, int len) {
  if (lo < 0 || len < 0 ||
      static_cast<std::size_t>(lo + len) > a.size()) {
    throw InvalidArgument("slice out of range");
  }
  return Bus(a.begin() + lo, a.begin() + lo + len);
}

Bus concat(const Bus& low, const Bus& high) {
  Bus out = low;
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

Bus zero_extend(Builder& b, const Bus& a, int width) {
  if (static_cast<std::size_t>(width) < a.size()) {
    throw InvalidArgument("zero_extend: target narrower than source");
  }
  Bus out = a;
  while (out.size() < static_cast<std::size_t>(width)) out.push_back(b.zero());
  return out;
}

Bus sign_extend(const Bus& a, int width) {
  if (a.empty() || static_cast<std::size_t>(width) < a.size()) {
    throw InvalidArgument("sign_extend: bad widths");
  }
  Bus out = a;
  while (out.size() < static_cast<std::size_t>(width)) {
    out.push_back(a.back());
  }
  return out;
}

Bus bus_not(Builder& b, const Bus& a) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(b.inv(n));
  return out;
}

Bus bus_and(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "bus_and");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.and2(a[i], c[i]));
  return out;
}

Bus bus_or(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "bus_or");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.or2(a[i], c[i]));
  return out;
}

Bus bus_xor(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "bus_xor");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(b.xor2(a[i], c[i]));
  return out;
}

Bus bus_mask(Builder& b, const Bus& a, NetId m) {
  Bus out;
  out.reserve(a.size());
  for (const NetId n : a) out.push_back(b.and2(n, m));
  return out;
}

Bus bus_mux(Builder& b, NetId sel, const Bus& a, const Bus& c) {
  check_same_width(a, c, "bus_mux");
  Bus out;
  out.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.push_back(b.mux2(sel, a[i], c[i]));
  }
  return out;
}

Bus bus_mux_tree(Builder& b, const Bus& sel, std::span<const Bus> options) {
  if (options.empty()) throw InvalidArgument("bus_mux_tree: no options");
  std::vector<Bus> level(options.begin(), options.end());
  for (const NetId s : sel) {
    if (level.size() == 1) break;
    std::vector<Bus> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i < level.size(); i += 2) {
      if (i + 1 < level.size()) {
        next.push_back(bus_mux(b, s, level[i], level[i + 1]));
      } else {
        next.push_back(level[i]);  // out-of-range selects fall through
      }
    }
    level = std::move(next);
  }
  if (level.size() != 1) {
    throw InvalidArgument("bus_mux_tree: select too narrow for option count");
  }
  return level[0];
}

std::vector<NetId> decode(Builder& b, const Bus& sel) {
  const std::size_t n = sel.size();
  std::vector<NetId> outputs(std::size_t{1} << n);
  Bus inverted;
  inverted.reserve(n);
  for (const NetId s : sel) inverted.push_back(b.inv(s));
  for (std::size_t v = 0; v < outputs.size(); ++v) {
    std::vector<NetId> terms;
    terms.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      terms.push_back(((v >> i) & 1) ? sel[i] : inverted[i]);
    }
    outputs[v] = b.and_reduce(terms);
  }
  return outputs;
}

AddResult ripple_add(Builder& b, const Bus& a, const Bus& c, NetId carry_in) {
  check_same_width(a, c, "ripple_add");
  Bus sum;
  sum.reserve(a.size());
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Full adder: sum = a ^ b ^ cin; cout = ab | cin(a ^ b).
    const NetId axb = b.xor2(a[i], c[i]);
    sum.push_back(b.xor2(axb, carry));
    const NetId and_ab = b.and2(a[i], c[i]);
    const NetId and_cx = b.and2(carry, axb);
    carry = b.or2(and_ab, and_cx);
  }
  return {std::move(sum), carry};
}

Bus add(Builder& b, const Bus& a, const Bus& c) {
  return ripple_add(b, a, c, b.zero()).sum;
}

AddResult subtract(Builder& b, const Bus& a, const Bus& c) {
  return ripple_add(b, a, bus_not(b, c), b.one());
}

Bus negate(Builder& b, const Bus& a) {
  return subtract(b, bus_constant(b, static_cast<int>(a.size()), 0), a).sum;
}

NetId equal(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "equal");
  std::vector<NetId> eq_bits;
  eq_bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits.push_back(b.xnor2(a[i], c[i]));
  }
  return b.and_reduce(eq_bits);
}

NetId is_zero(Builder& b, const Bus& a) {
  return b.inv(b.or_reduce(a));
}

NetId less_unsigned(Builder& b, const Bus& a, const Bus& c) {
  // a < c  <=>  a - c borrows  <=>  carry out of (a + ~c + 1) is 0.
  return b.inv(subtract(b, a, c).carry);
}

NetId less_signed(Builder& b, const Bus& a, const Bus& c) {
  const AddResult diff = subtract(b, a, c);
  // lt = (sign(a) ^ sign(c)) ? sign(a) : sign(diff)
  const NetId signs_differ = b.xor2(a.back(), c.back());
  return b.mux2(signs_differ, diff.sum.back(), a.back());
}

Bus shift_left(Builder& b, const Bus& a, const Bus& amount) {
  Bus value = a;
  for (std::size_t k = 0; k < amount.size(); ++k) {
    const std::size_t dist = std::size_t{1} << k;
    Bus shifted;
    shifted.reserve(value.size());
    for (std::size_t i = 0; i < value.size(); ++i) {
      shifted.push_back(i < dist ? b.zero() : value[i - dist]);
    }
    value = bus_mux(b, amount[k], value, shifted);
  }
  return value;
}

Bus shift_right(Builder& b, const Bus& a, const Bus& amount, NetId fill) {
  Bus value = a;
  for (std::size_t k = 0; k < amount.size(); ++k) {
    const std::size_t dist = std::size_t{1} << k;
    Bus shifted;
    shifted.reserve(value.size());
    for (std::size_t i = 0; i < value.size(); ++i) {
      shifted.push_back(i + dist < value.size() ? value[i + dist] : fill);
    }
    value = bus_mux(b, amount[k], value, shifted);
  }
  return value;
}

Bus multiply(Builder& b, const Bus& a, const Bus& c) {
  if (a.empty() || c.empty()) throw InvalidArgument("multiply: empty operand");
  const int out_width = static_cast<int>(a.size() + c.size());
  Bus acc = bus_constant(b, out_width, 0);
  // Row-by-row accumulation: after row i the accumulator occupies bits
  // [0, a.size() + i]; each row adds the partial product at offset i and
  // deposits its carry one bit above the row's top.
  for (std::size_t i = 0; i < c.size(); ++i) {
    Bus pp = bus_mask(b, a, c[i]);
    pp.push_back(b.zero());  // widen to a.size() + 1 to absorb the row carry
    Bus window = slice(acc, static_cast<int>(i), static_cast<int>(a.size()) + 1);
    const AddResult r = ripple_add(b, window, pp, b.zero());
    for (std::size_t j = 0; j < r.sum.size(); ++j) acc[i + j] = r.sum[j];
    if (i + a.size() + 1 < static_cast<std::size_t>(out_width)) {
      acc[i + a.size() + 1] = r.carry;
    }
  }
  return acc;
}

DivResult divide_unsigned(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "divide_unsigned");
  const int w = static_cast<int>(a.size());
  const Bus divisor = zero_extend(b, c, w + 1);
  Bus remainder = bus_constant(b, w + 1, 0);
  Bus quotient(static_cast<std::size_t>(w), b.zero());
  for (int i = w - 1; i >= 0; --i) {
    // remainder = (remainder << 1) | a[i]
    Bus shifted;
    shifted.reserve(static_cast<std::size_t>(w) + 1);
    shifted.push_back(a[static_cast<std::size_t>(i)]);
    for (int j = 0; j < w; ++j) shifted.push_back(remainder[static_cast<std::size_t>(j)]);
    const AddResult diff = subtract(b, shifted, divisor);
    const NetId fits = diff.carry;  // 1 when shifted >= divisor
    remainder = bus_mux(b, fits, shifted, diff.sum);
    quotient[static_cast<std::size_t>(i)] = fits;
  }
  // Division by zero: RISC-V defines q = all ones, r = dividend.
  const NetId div_zero = is_zero(b, c);
  Bus ones = bus_constant(b, w, ~std::uint64_t{0});
  DivResult out;
  out.quotient = bus_mux(b, div_zero, quotient, ones);
  out.remainder = bus_mux(b, div_zero, slice(remainder, 0, w), a);
  return out;
}

DivResult divide_signed(Builder& b, const Bus& a, const Bus& c) {
  check_same_width(a, c, "divide_signed");
  const int w = static_cast<int>(a.size());
  const NetId sign_a = a.back();
  const NetId sign_c = c.back();
  const Bus abs_a = bus_mux(b, sign_a, a, negate(b, a));
  const Bus abs_c = bus_mux(b, sign_c, c, negate(b, c));
  const DivResult u = divide_unsigned(b, abs_a, abs_c);
  const NetId q_neg = b.xor2(sign_a, sign_c);
  const NetId div_zero = is_zero(b, c);
  // q = (signs differ) ? -uq : uq, except q = -1 on div-by-zero.
  Bus q = bus_mux(b, q_neg, u.quotient, negate(b, u.quotient));
  q = bus_mux(b, div_zero, q, bus_constant(b, w, ~std::uint64_t{0}));
  // r takes the dividend's sign; r = dividend on div-by-zero.
  Bus r = bus_mux(b, sign_a, u.remainder, negate(b, u.remainder));
  r = bus_mux(b, div_zero, r, a);
  return {std::move(q), std::move(r)};
}

NormalizeResult normalize_left(Builder& b, const Bus& a) {
  if (a.empty()) throw InvalidArgument("normalize_left: empty bus");
  const int w = static_cast<int>(a.size());
  int stages = 0;
  while ((1 << stages) < w) ++stages;
  Bus value = a;
  Bus amount;
  for (int k = stages - 1; k >= 0; --k) {
    const int dist = 1 << k;
    // If the top `dist` bits are all zero, shift left by dist.
    const int top_len = std::min(dist, w);
    const Bus top = slice(value, w - top_len, top_len);
    const NetId top_zero = is_zero(b, top);
    Bus shifted;
    shifted.reserve(static_cast<std::size_t>(w));
    for (int i = 0; i < w; ++i) {
      shifted.push_back(i < dist ? b.zero() : value[static_cast<std::size_t>(i - dist)]);
    }
    value = bus_mux(b, top_zero, value, shifted);
    amount.push_back(top_zero);
  }
  std::reverse(amount.begin(), amount.end());  // LSB-first shift amount
  // One more bit: all-zero input (never normalizes).
  amount.push_back(is_zero(b, value));
  return {std::move(value), std::move(amount)};
}

}  // namespace ssresf::soc
