// The unified SSRESF pipeline driver (Pipeline API v2).
//
// One binary, eight commands over the staged core::Session:
//   run          simulate -> build_dataset -> tune -> train -> predict
//   simulate     dynamic-simulation phase only (campaign records artifact)
//   train        everything up to and including the trained model bundle
//   predict      classify every node from a saved model bundle (.ssmd),
//                locally or against a model-serve daemon (--connect)
//   serve        run with the simulate stage served to socket workers
//   worker       connect to a serving coordinator and simulate its chunks
//   merge        merge .ssfs shard files into the scenario's records artifact
//   model-serve  long-lived prediction daemon over a models/ directory of
//                .ssmd bundles (SSNP + HTTP fronts, hot reload)
//
// A scenario YAML fully determines (model, campaign, SVM, grids, seeds), so
// the same file reproduces byte-identical artifacts and predictions on any
// host, through any transport — which is what the CI scenario-equivalence
// job checks. Stages persist digest-bound artifacts into --out-dir and
// resume from them, so `ssresf simulate` on one machine, `ssresf train` on a
// second, and `ssresf predict` on a third compose into one pipeline.
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/features.h"
#include "core/session.h"
#include "fi/shard.h"
#include "net/worker.h"
#include "serve/predict_client.h"
#include "serve/predict_server.h"
#include "serve/registry.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/subprocess.h"
#include "util/table.h"

using namespace ssresf;

namespace {

struct Options {
  std::string command;
  std::string scenario_file;
  std::string out_dir = ".";
  bool resume = true;
  bool progress = false;
  int threads = 1;
  int lanes = 0;             // packed lane width; 0 = scenario value
  int record_format = 1;     // records artifact codec: 1 = flat, 2 = columnar
  int workers = 0;           // run/simulate/train: spawned socket workers
  int port = 0;              // serve
  std::string connect;       // worker: host:port
  std::string model_file;    // predict: defaults to <out-dir>/<name>.ssmd
  bool cross_netlist = false;
  std::string records_csv;
  std::string predictions_csv;
  std::vector<std::string> merge_inputs;
  // --- fleet fault tolerance -------------------------------------------------
  std::string secret;        // overrides the scenario's fleet.secret
  bool secret_set = false;
  double connect_timeout = 0;  // 0 = scenario fleet.connect_timeout
  double worker_timeout = 0;   // 0 = scenario fleet.worker_timeout
  std::string journal;         // serve: coordinator dispatch journal (.ssjl)
  bool fleet_status = false;   // serve: print the fleet health table
  // --- self-healing fleet ----------------------------------------------------
  std::uint64_t worker_id = 0;     // worker: stable identity / election tiebreak
  double election_timeout = -1;    // worker: -1 = scenario fleet.election_timeout
  int peer_port = -1;              // worker: -1 = scenario fleet.peer_port
  std::string promoted_csv;        // worker: final CSV if this worker promotes
  std::string advertise_addr;      // worker: host peers dial for the listener
  bool advertise_set = false;
  // --- model serving ---------------------------------------------------------
  std::string models_dir;          // model-serve: registry directory
  int http_port = 0;               // model-serve: HTTP front port
  double reload_interval = 1.0;    // model-serve: registry rescan period
  bool stats = false;              // model-serve: print metrics on exit
  bool threads_set = false;        // --threads given explicitly
  std::string model_alias;         // predict --connect: served model alias
  bool use_http = false;           // predict --connect: HTTP front, not SSNP
  std::string publish_dir;         // train/run/serve: registry hand-off dir
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: ssresf <command> --scenario FILE [options]\n"
      "\n"
      "commands:\n"
      "  run        full pipeline: simulate -> build_dataset -> tune ->\n"
      "             train -> predict\n"
      "  simulate   dynamic-simulation phase only (writes <name>.ssfs)\n"
      "  train      through model training (writes <name>.ssmd)\n"
      "  predict    classify every node from a saved model bundle\n"
      "  serve      like run, but the simulate stage is served over TCP to\n"
      "             'ssresf worker' processes (local or remote)\n"
      "  worker     connect to a serving coordinator (--connect HOST:PORT)\n"
      "  merge      merge .ssfs shard files into the records artifact\n"
      "  model-serve\n"
      "             serve a models/ directory of .ssmd bundles as a warm\n"
      "             prediction daemon (SSNP batch + HTTP JSON fronts)\n"
      "\n"
      "common options:\n"
      "  --scenario FILE     scenario YAML (all commands except worker)\n"
      "  --out-dir DIR       artifact directory (default '.')\n"
      "  --no-resume         recompute stages even when artifacts exist\n"
      "  --progress          live stage progress on stderr\n"
      "  --threads N         simulation threads per process (default 1)\n"
      "  --lanes N           bit-parallel lane width: 64 or 256 (default:\n"
      "                      scenario value; 256 uses AVX2 when available;\n"
      "                      records are byte-identical at every width)\n"
      "  --record-format v1|v2\n"
      "                      codec of the records artifact (<name>.ssfs):\n"
      "                      v1 flat shard codec (default) or v2 chunked\n"
      "                      columnar store; resume reads either\n"
      "\n"
      "run / simulate / train / serve:\n"
      "  --workers N         delegate simulation to N spawned socket workers\n"
      "  --records-csv PATH  write per-injection campaign records as CSV\n"
      "run / train / serve:\n"
      "  --publish DIR       also write the trained bundle into DIR (a\n"
      "                      model-serve registry picks it up on its next\n"
      "                      rescan)\n"
      "run / predict:\n"
      "  --predictions-csv PATH\n"
      "                      write per-node classifications as CSV\n"
      "predict:\n"
      "  --model FILE        model bundle (default <out-dir>/<name>.ssmd)\n"
      "  --cross-netlist     allow a model trained on a different campaign\n"
      "                      digest (the paper's transfer use case)\n"
      "  --connect HOST:PORT classify via a running model-serve daemon\n"
      "                      instead of loading the bundle locally (the CSV\n"
      "                      is byte-identical to the local path)\n"
      "  --http              with --connect: use the daemon's HTTP front\n"
      "                      instead of the SSNP frame protocol\n"
      "  --model-alias NAME  served model alias (default: scenario name)\n"
      "model-serve:\n"
      "  --models DIR        directory of .ssmd bundles to serve (required);\n"
      "                      rescanned for hot reload while serving\n"
      "  --port P            SSNP front port (default 0 = ephemeral, printed)\n"
      "  --http-port P       HTTP front port (default 0 = ephemeral, printed)\n"
      "  --reload-interval S rescan --models every S seconds (0 = never;\n"
      "                      default 1)\n"
      "  --stats             print per-model request metrics on exit\n"
      "  --threads N         request-handler threads (default: hardware)\n"
      "serve:\n"
      "  --port P            listen port (default 0 = ephemeral, printed)\n"
      "  --journal PATH      dispatch journal (.ssjl); a restarted serve\n"
      "                      resumes the campaign from it\n"
      "  --fleet-status      print the fleet health table when serving ends\n"
      "worker:\n"
      "  --connect HOST:PORT coordinator address\n"
      "  --scenario FILE     optional: read fleet.secret / fleet timeouts\n"
      "  --worker-id N       stable identity; lowest id wins an election\n"
      "  --election-timeout S\n"
      "                      self-elect a replacement coordinator after the\n"
      "                      current one has been gone S seconds (0 = off;\n"
      "                      default: scenario fleet.election_timeout)\n"
      "  --peer-port P       peer-query listener port (default: scenario\n"
      "                      fleet.peer_port; 0 = ephemeral)\n"
      "  --promoted-csv P    if this worker wins an election, write the\n"
      "                      campaign's final records CSV here\n"
      "  --advertise-addr H  host peers should dial to reach this worker's\n"
      "                      peer listener (default: scenario\n"
      "                      fleet.advertise_addr; empty = the address the\n"
      "                      coordinator saw; setting it widens the peer\n"
      "                      listener bind beyond loopback)\n"
      "fleet (serve / worker / run with --workers):\n"
      "  --secret S          handshake secret (overrides fleet.secret)\n"
      "  --connect-timeout S worker connect retry window, seconds (> 0)\n"
      "  --worker-timeout S  coordinator silence reap threshold, seconds (> 0)\n"
      "merge:\n"
      "  positional          .ssfs shard files to merge\n",
      out);
}

[[nodiscard]] Options parse_options(int argc, char** argv) {
  Options opt;
  if (argc < 2) throw InvalidArgument("missing command (see --help)");
  opt.command = argv[1];
  if (opt.command == "--help" || opt.command == "-h") {
    usage(stdout);
    std::exit(0);
  }
  const bool known_command =
      opt.command == "run" || opt.command == "simulate" ||
      opt.command == "train" || opt.command == "predict" ||
      opt.command == "serve" || opt.command == "worker" ||
      opt.command == "merge" || opt.command == "model-serve";
  if (!known_command) {
    throw InvalidArgument("unknown command '" + opt.command + "'");
  }
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw InvalidArgument(std::string(argv[i]) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--scenario") {
      opt.scenario_file = need_value(i);
    } else if (arg == "--out-dir") {
      opt.out_dir = need_value(i);
    } else if (arg == "--no-resume") {
      opt.resume = false;
    } else if (arg == "--progress") {
      opt.progress = true;
    } else if (arg == "--threads") {
      opt.threads = std::stoi(need_value(i));
      opt.threads_set = true;
    } else if (arg == "--lanes") {
      opt.lanes = std::stoi(need_value(i));
    } else if (arg == "--record-format") {
      const std::string format = need_value(i);
      if (format == "v1") {
        opt.record_format = 1;
      } else if (format == "v2") {
        opt.record_format = 2;
      } else {
        throw InvalidArgument("--record-format expects v1|v2, got '" + format +
                              "'");
      }
    } else if (arg == "--workers") {
      opt.workers = std::stoi(need_value(i));
      if (opt.workers < 1) throw InvalidArgument("--workers must be >= 1");
    } else if (arg == "--port") {
      opt.port = std::stoi(need_value(i));
      if (opt.port < 0 || opt.port > 65535) {
        throw InvalidArgument("--port expects a port in [0, 65535]");
      }
    } else if (arg == "--connect") {
      opt.connect = need_value(i);
    } else if (arg == "--model") {
      opt.model_file = need_value(i);
    } else if (arg == "--cross-netlist") {
      opt.cross_netlist = true;
    } else if (arg == "--records-csv") {
      opt.records_csv = need_value(i);
    } else if (arg == "--predictions-csv") {
      opt.predictions_csv = need_value(i);
    } else if (arg == "--secret") {
      opt.secret = need_value(i);
      opt.secret_set = true;
    } else if (arg == "--connect-timeout") {
      opt.connect_timeout = std::stod(need_value(i));
      if (opt.connect_timeout <= 0) {
        throw InvalidArgument("--connect-timeout must be positive, got " +
                              std::to_string(opt.connect_timeout));
      }
    } else if (arg == "--worker-timeout") {
      opt.worker_timeout = std::stod(need_value(i));
      if (opt.worker_timeout <= 0) {
        throw InvalidArgument("--worker-timeout must be positive, got " +
                              std::to_string(opt.worker_timeout));
      }
    } else if (arg == "--journal") {
      opt.journal = need_value(i);
    } else if (arg == "--fleet-status") {
      opt.fleet_status = true;
    } else if (arg == "--worker-id") {
      opt.worker_id = std::stoull(need_value(i));
      if (opt.worker_id == 0) {
        throw InvalidArgument("--worker-id must be nonzero (0 = auto)");
      }
    } else if (arg == "--election-timeout") {
      opt.election_timeout = std::stod(need_value(i));
      if (opt.election_timeout < 0) {
        throw InvalidArgument("--election-timeout must be >= 0, got " +
                              std::to_string(opt.election_timeout));
      }
    } else if (arg == "--peer-port") {
      opt.peer_port = std::stoi(need_value(i));
      if (opt.peer_port < 0 || opt.peer_port > 65535) {
        throw InvalidArgument("--peer-port expects a port in [0, 65535]");
      }
    } else if (arg == "--promoted-csv") {
      opt.promoted_csv = need_value(i);
    } else if (arg == "--advertise-addr") {
      opt.advertise_addr = need_value(i);
      opt.advertise_set = true;
    } else if (arg == "--models") {
      opt.models_dir = need_value(i);
    } else if (arg == "--http-port") {
      opt.http_port = std::stoi(need_value(i));
      if (opt.http_port < 0 || opt.http_port > 65535) {
        throw InvalidArgument("--http-port expects a port in [0, 65535]");
      }
    } else if (arg == "--reload-interval") {
      opt.reload_interval = std::stod(need_value(i));
      if (opt.reload_interval < 0) {
        throw InvalidArgument("--reload-interval must be >= 0, got " +
                              std::to_string(opt.reload_interval));
      }
    } else if (arg == "--stats") {
      opt.stats = true;
    } else if (arg == "--model-alias") {
      opt.model_alias = need_value(i);
    } else if (arg == "--http") {
      opt.use_http = true;
    } else if (arg == "--publish") {
      opt.publish_dir = need_value(i);
    } else if (!arg.empty() && arg[0] != '-') {
      opt.merge_inputs.push_back(arg);
    } else {
      throw InvalidArgument("unknown option '" + arg + "'");
    }
  }
  if (opt.command == "worker") {
    if (opt.connect.empty()) {
      throw InvalidArgument("worker requires --connect HOST:PORT");
    }
  } else if (opt.command == "model-serve") {
    if (opt.models_dir.empty()) {
      throw InvalidArgument("model-serve requires --models DIR");
    }
  } else if (opt.scenario_file.empty()) {
    throw InvalidArgument(opt.command + " requires --scenario FILE");
  }
  if (!opt.merge_inputs.empty() && opt.command != "merge") {
    throw InvalidArgument("positional arguments are only valid with merge");
  }
  if (opt.command == "merge" && opt.merge_inputs.empty()) {
    throw InvalidArgument("merge requires shard files");
  }
  return opt;
}

/// stderr progress renderer: lifecycle messages one per line, counted
/// progress throttled to whole-percent steps. Thread-safe (the simulate
/// counter arrives from campaign worker threads).
class ProgressPrinter {
 public:
  void operator()(const core::StageProgress& progress) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!progress.message.empty()) {
      if (counting_) {
        std::fputc('\n', stderr);
        counting_ = false;
      }
      std::fprintf(stderr, "[%s] %s\n", progress.stage.c_str(),
                   progress.message.c_str());
      return;
    }
    if (progress.total == 0) return;
    const int percent = static_cast<int>(100 * progress.completed /
                                         progress.total);
    if (percent == last_percent_ && progress.completed != progress.total) {
      return;
    }
    last_percent_ = percent;
    counting_ = true;
    std::fprintf(stderr, "\r[%s] %llu/%llu (%d%%)", progress.stage.c_str(),
                 static_cast<unsigned long long>(progress.completed),
                 static_cast<unsigned long long>(progress.total), percent);
    if (progress.completed == progress.total) {
      std::fputc('\n', stderr);
      counting_ = false;
    }
  }

 private:
  std::mutex mutex_;
  int last_percent_ = -1;
  bool counting_ = false;
};

void print_campaign_summary(const fi::CampaignResult& campaign) {
  std::size_t errors = 0;
  for (const auto& r : campaign.records) errors += r.soft_error ? 1 : 0;
  std::printf("simulate: %zu injections, %zu soft errors, chip SER %.4f%%\n",
              campaign.records.size(), errors, campaign.chip_ser_percent);
}

void print_prediction_summary(const soc::SocModel& model,
                              const core::SessionPrediction& prediction) {
  std::size_t high = 0;
  for (const int label : prediction.labels) high += label == 1 ? 1 : 0;
  std::printf("predict: %zu nodes, %zu classified highly sensitive\n",
              prediction.cells.size(), high);
  util::Table table({"module class", "high-sensitivity %"});
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    table.add_row(
        {std::string(
             netlist::module_class_name(static_cast<netlist::ModuleClass>(c))),
         util::format("%.2f%%", prediction.class_percent[c])});
  }
  std::printf("%s", table.render().c_str());
  (void)model;
}

/// Wires --workers: once the coordinator listens, spawn N `ssresf worker`
/// subprocesses against it. The session's simulate() then blocks until the
/// fleet drains the plan.
struct WorkerFleet {
  std::vector<util::Subprocess> children;
  std::string self;
  int count = 0;
  int threads = 1;
  int lanes = 0;  // 0 = worker default (64)
  /// Forwarded fleet flags (--scenario for the secret/timeouts, plus any
  /// explicit --secret/--connect-timeout overrides) — a spawned worker must
  /// pass the same authenticated handshake a remote one would.
  std::vector<std::string> extra_args;

  void spawn(std::uint16_t port) {
    children.reserve(static_cast<std::size_t>(count));
    for (int k = 0; k < count; ++k) {
      std::vector<std::string> args{
          self, "worker", "--connect", "127.0.0.1:" + std::to_string(port),
          "--threads", std::to_string(threads)};
      if (lanes != 0) {
        args.insert(args.end(), {"--lanes", std::to_string(lanes)});
      }
      args.insert(args.end(), extra_args.begin(), extra_args.end());
      children.emplace_back(std::move(args));
    }
  }

  void wait() {
    for (std::size_t k = 0; k < children.size(); ++k) {
      const int code = children[k].wait();
      if (code != 0) {
        // The campaign is complete and digest-verified by the time this
        // runs; a late worker failure is informational.
        std::fprintf(stderr, "note: worker %zu exited with code %d\n", k, code);
      }
    }
  }
};

int run_stage_command(const Options& opt, const std::string& self) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  ProgressPrinter printer;
  WorkerFleet fleet{{}, self, opt.workers, opt.threads, opt.lanes, {}};
  fleet.extra_args = {"--scenario", opt.scenario_file};
  if (opt.secret_set) {
    fleet.extra_args.insert(fleet.extra_args.end(), {"--secret", opt.secret});
  }
  if (opt.connect_timeout > 0) {
    fleet.extra_args.insert(
        fleet.extra_args.end(),
        {"--connect-timeout", std::to_string(opt.connect_timeout)});
  }

  // `serve` keeps the requested port and accepts remote workers (with
  // --workers, spawned local workers join them); the other commands use
  // --workers as a private ephemeral loopback fleet.
  int serve_port = -1;
  bool loopback_only = true;
  if (opt.command == "serve") {
    serve_port = opt.port;
    loopback_only = false;
  } else if (opt.workers > 0) {
    serve_port = 0;
  }

  core::ScenarioSpec spec = core::ScenarioSpec::load_file(opt.scenario_file);
  if (opt.secret_set) spec.fleet.secret = opt.secret;
  core::SessionOptions options;
  options.artifact_dir = opt.out_dir;
  options.resume = opt.resume;
  options.threads = opt.threads;
  options.lanes = opt.lanes;
  options.record_format = opt.record_format;
  options.serve_port = serve_port;
  options.serve_loopback_only = loopback_only;
  options.worker_timeout_seconds = opt.worker_timeout;  // 0 = scenario value
  options.serve_journal = opt.journal;
  options.publish_dir = opt.publish_dir;
  if (opt.fleet_status) {
    options.on_fleet_status = [](const std::string& table) {
      std::fprintf(stderr, "fleet status:\n%s", table.c_str());
    };
  }
  if (opt.progress) {
    options.progress = [&printer](const core::StageProgress& p) { printer(p); };
  }
  if (serve_port >= 0) {
    options.on_serving = [&fleet, &opt](std::uint16_t port) {
      if (opt.command == "serve") {
        std::fprintf(stderr, "serving campaign on port %u\n",
                     static_cast<unsigned>(port));
      }
      if (fleet.count > 0) fleet.spawn(port);
    };
  }
  core::Session session(std::move(spec), db, std::move(options));

  if (opt.command == "simulate") {
    const fi::CampaignResult& campaign = session.simulate();
    fleet.wait();
    if (!opt.records_csv.empty()) {
      fi::write_records_csv(opt.records_csv, campaign.records);
    }
    print_campaign_summary(campaign);
    return 0;
  }
  if (opt.command == "train") {
    if (!opt.records_csv.empty()) {
      // Forces the simulate stage even when train() alone would resume
      // straight from a persisted .ssmd.
      fi::write_records_csv(opt.records_csv, session.simulate().records);
    }
    const core::ModelBundle& bundle = session.train();
    fleet.wait();
    std::printf("train: %zu support vectors, cv accuracy %.2f%%, model %s\n",
                bundle.model.num_support_vectors(),
                100.0 * bundle.cv_mean_accuracy, session.model_path().c_str());
    return 0;
  }
  // run / serve: the full pipeline.
  const fi::CampaignResult& campaign = session.simulate();
  fleet.wait();
  if (!opt.records_csv.empty()) {
    fi::write_records_csv(opt.records_csv, campaign.records);
  }
  const core::SessionPrediction& prediction = session.predict();
  print_campaign_summary(campaign);
  if (session.has_cv()) {
    std::printf("tune: cv accuracy %.2f%% (C=%.3g gamma=%.3g)\n",
                100.0 * session.cv().mean_accuracy,
                session.train().chosen_svm.c,
                session.train().chosen_svm.kernel.gamma);
  }
  print_prediction_summary(session.model(), prediction);
  if (!opt.predictions_csv.empty()) {
    core::write_predictions_csv(opt.predictions_csv, session.model(),
                                prediction);
    std::printf("predictions written to %s\n", opt.predictions_csv.c_str());
  }
  return 0;
}

int run_predict_command(const Options& opt) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  ProgressPrinter printer;
  core::ScenarioSpec spec = core::ScenarioSpec::load_file(opt.scenario_file);
  core::SessionOptions options;
  options.artifact_dir = opt.out_dir;
  options.resume = opt.resume;
  options.threads = opt.threads;
  options.lanes = opt.lanes;
  options.record_format = opt.record_format;
  if (opt.progress) {
    options.progress = [&printer](const core::StageProgress& p) { printer(p); };
  }
  core::Session session(std::move(spec), db, std::move(options));
  const std::string model_file =
      opt.model_file.empty() ? session.model_path() : opt.model_file;
  // Loading through adopt_model (not resume) so --model can point anywhere
  // and --cross-netlist can authorize transfer to a modified netlist. The
  // registry loader is the same one model-serve uses, so repeated predicts
  // against an unchanged bundle share one decoded copy.
  session.adopt_model(*serve::ModelRegistry::load_file(model_file),
                      opt.cross_netlist);
  const core::SessionPrediction& prediction = session.predict();
  print_prediction_summary(session.model(), prediction);
  if (!opt.predictions_csv.empty()) {
    core::write_predictions_csv(opt.predictions_csv, session.model(),
                                prediction);
    std::printf("predictions written to %s\n", opt.predictions_csv.c_str());
  }
  return 0;
}

int run_worker_command(const Options& opt) {
  const std::size_t colon = opt.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == opt.connect.size()) {
    throw InvalidArgument("--connect expects HOST:PORT, got '" + opt.connect +
                          "'");
  }
  const int port = std::stoi(opt.connect.substr(colon + 1));
  if (port < 1 || port > 65535) {
    throw InvalidArgument("--connect port must be in [1, 65535]");
  }
  const auto db = radiation::SoftErrorDatabase::default_database();
  net::WorkerOptions wopts;
  wopts.host = opt.connect.substr(0, colon);
  wopts.port = static_cast<std::uint16_t>(port);
  wopts.threads = opt.threads;
  if (opt.lanes != 0) wopts.lanes = opt.lanes;
  wopts.verbose = opt.progress;
  // Fleet settings: the scenario file (when given) supplies the defaults,
  // explicit flags override.
  if (!opt.scenario_file.empty()) {
    const core::ScenarioSpec spec =
        core::ScenarioSpec::load_file(opt.scenario_file);
    wopts.secret = spec.fleet.secret;
    wopts.connect_timeout_seconds = spec.fleet.connect_timeout;
    wopts.election_timeout_seconds = spec.fleet.election_timeout;
    wopts.peer_port = spec.fleet.peer_port;
    wopts.advertise_host = spec.fleet.advertise_addr;
  }
  if (opt.advertise_set) wopts.advertise_host = opt.advertise_addr;
  if (opt.secret_set) wopts.secret = opt.secret;
  if (opt.connect_timeout > 0) {
    wopts.connect_timeout_seconds = opt.connect_timeout;
  }
  wopts.worker_id = opt.worker_id;
  if (opt.election_timeout >= 0) {
    wopts.election_timeout_seconds = opt.election_timeout;
  }
  if (opt.peer_port >= 0) {
    wopts.peer_port = static_cast<std::uint16_t>(opt.peer_port);
  }
  net::Worker worker(db, wopts);
  const std::uint64_t produced = worker.run();
  std::fprintf(stderr, "worker done: %llu records\n",
               static_cast<unsigned long long>(produced));
  if (worker.promoted() && worker.promoted_result().has_value() &&
      !opt.promoted_csv.empty()) {
    fi::write_records_csv(opt.promoted_csv, worker.promoted_result()->records);
    std::fprintf(stderr, "promoted: merged records -> %s\n",
                 opt.promoted_csv.c_str());
  }
  return 0;
}

/// Splits "HOST:PORT" (the last ':' wins, so IPv6-ish hosts still parse).
[[nodiscard]] std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& addr) {
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    throw InvalidArgument("--connect expects HOST:PORT, got '" + addr + "'");
  }
  const int port = std::stoi(addr.substr(colon + 1));
  if (port < 1 || port > 65535) {
    throw InvalidArgument("--connect port must be in [1, 65535]");
  }
  return {addr.substr(0, colon), static_cast<std::uint16_t>(port)};
}

/// `predict --connect`: classify the scenario's netlist against a running
/// model-serve daemon instead of loading the bundle locally. Features are
/// extracted here, labels come back from the daemon — which runs the same
/// core::bundle_classify arithmetic, so the CSV is byte-identical to the
/// offline path.
int run_remote_predict(const Options& opt) {
  const auto [host, port] = parse_host_port(opt.connect);
  const core::ScenarioSpec spec =
      core::ScenarioSpec::load_file(opt.scenario_file);
  const soc::SocModel model = spec.build_model();
  const std::uint64_t digest =
      fi::campaign_config_digest(model, spec.campaign.config);

  const core::FeatureExtractor extractor(model.netlist);
  std::vector<std::vector<double>> rows;
  core::SessionPrediction prediction;
  for (const netlist::CellId id : model.netlist.all_cells()) {
    const netlist::CellKind kind = model.netlist.cell(id).kind;
    if (kind == netlist::CellKind::kConst0 ||
        kind == netlist::CellKind::kConst1) {
      continue;
    }
    rows.push_back(extractor.extract(id));
    prediction.cells.push_back(id);
  }

  const std::string alias =
      opt.model_alias.empty() ? spec.name : opt.model_alias;
  const std::uint64_t expect_digest = opt.cross_netlist ? 0 : digest;
  const double timeout = opt.connect_timeout > 0 ? opt.connect_timeout : 10.0;
  serve::PredictResult result;
  if (opt.use_http) {
    serve::HttpPredictClient client(host, port, timeout);
    result = client.predict(alias, expect_digest, rows);
  } else {
    serve::PredictClient client(host, port, timeout);
    result = client.predict(alias, expect_digest, rows);
  }
  std::fprintf(stderr,
               "predict: served by '%s' (digest %016llx, generation %llu)\n",
               result.alias.c_str(),
               static_cast<unsigned long long>(result.config_digest),
               static_cast<unsigned long long>(result.generation));

  prediction.labels = std::move(result.labels);
  std::array<std::size_t, netlist::kModuleClassCount> high{};
  std::array<std::size_t, netlist::kModuleClassCount> total{};
  for (std::size_t i = 0; i < prediction.cells.size(); ++i) {
    const auto cls =
        static_cast<std::size_t>(model.netlist.cell_class(prediction.cells[i]));
    ++total[cls];
    if (prediction.labels[i] == 1) ++high[cls];
  }
  for (std::size_t c = 0; c < netlist::kModuleClassCount; ++c) {
    prediction.class_percent[c] =
        total[c] > 0 ? 100.0 * static_cast<double>(high[c]) /
                           static_cast<double>(total[c])
                     : 0.0;
  }
  print_prediction_summary(model, prediction);
  if (!opt.predictions_csv.empty()) {
    core::write_predictions_csv(opt.predictions_csv, model, prediction);
    std::printf("predictions written to %s\n", opt.predictions_csv.c_str());
  }
  return 0;
}

// SIGTERM/SIGINT flip this; the model-serve main loop polls it and drains.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

int run_model_serve(const Options& opt) {
  serve::PredictServerOptions sopts;
  sopts.models_dir = opt.models_dir;
  sopts.ssnp_port = opt.port;
  sopts.http_port = opt.http_port;
  sopts.loopback_only = false;
  sopts.threads = opt.threads_set ? opt.threads : 0;
  sopts.reload_interval_seconds = opt.reload_interval;
  sopts.log = [](const std::string& line) {
    std::fprintf(stderr, "%s\n", line.c_str());
  };
  serve::PredictServer server(std::move(sopts));
  server.start();
  std::fprintf(stderr, "model-serve: ssnp port %u, http port %u\n",
               static_cast<unsigned>(server.ssnp_port()),
               static_cast<unsigned>(server.http_port()));
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "model-serve: shutdown requested, draining\n");
  server.stop();
  if (opt.stats) std::fputs(server.stats_table().c_str(), stdout);
  return 0;
}

int run_merge_command(const Options& opt) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  core::ScenarioSpec spec = core::ScenarioSpec::load_file(opt.scenario_file);
  core::SessionOptions options;
  options.artifact_dir = opt.out_dir;
  options.resume = false;
  options.record_format = opt.record_format;
  core::Session session(std::move(spec), db, std::move(options));
  fi::CampaignResult result =
      fi::merge_shard_files(session.model(), session.scenario().campaign.config,
                            db, opt.merge_inputs);
  if (!opt.records_csv.empty()) {
    fi::write_records_csv(opt.records_csv, result.records);
  }
  print_campaign_summary(result);
  // Persist as the scenario's records artifact so the later stages (train /
  // predict) resume from the merged campaign.
  session.adopt_campaign(std::move(result));
  std::printf("records artifact written to %s\n",
              session.records_path().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    if (opt.command == "worker") return run_worker_command(opt);
    if (opt.command == "merge") return run_merge_command(opt);
    if (opt.command == "model-serve") return run_model_serve(opt);
    if (opt.command == "predict") {
      return opt.connect.empty() ? run_predict_command(opt)
                                 : run_remote_predict(opt);
    }
    return run_stage_command(opt, argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ssresf: %s\n", e.what());
    return 2;
  }
}
