// Distributed fault-injection campaign driver.
//
// One binary, four roles:
//   (default)                     single-process campaign (fi::run_campaign)
//   --shard K/N --emit-shard-file run shard K of N, write its records
//   --merge FILE...               merge shard files into the full result
//   --workers N                   coordinator: spawn N `--shard k/N` worker
//                                 subprocesses of this binary, then merge
//
// All roles derive the identical plan from (model flags, campaign flags), so
// the merged records of any N-way run are byte-identical to the
// single-process run — the records CSV is diffable across roles, which is
// exactly what the CI distributed-equivalence smoke step does.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define SSRESF_GETPID _getpid
#else
#include <unistd.h>
#define SSRESF_GETPID ::getpid
#endif

#include "fi/shard.h"
#include "soc/programs.h"
#include "util/error.h"
#include "util/subprocess.h"

using namespace ssresf;

namespace {

struct Options {
  // --- model -----------------------------------------------------------------
  std::string workload = "benchmark-light";
  std::string isa = "RV32IM";
  std::string bus = "ahb";
  int mem_kb = 16;

  // --- campaign --------------------------------------------------------------
  std::string engine = "levelized";
  std::uint64_t seed = 1;
  int clusters = 8;
  double fraction = 0.02;
  int min_per_cluster = 4;
  int max_per_cluster = 32;
  double let = 37.0;
  double flux = 5e8;
  int threads = 1;
  int run_cycles = 0;
  int max_cycles = 4000;

  // --- role ------------------------------------------------------------------
  int shard_index = -1;
  int shard_count = 0;
  std::string emit_shard_file;
  bool merge = false;
  int workers = 0;
  std::string shard_dir;
  std::vector<std::string> merge_inputs;

  // --- output ----------------------------------------------------------------
  std::string records_csv;
  bool summary = false;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: ssresf_campaign [options]\n"
      "\n"
      "model:\n"
      "  --workload NAME     benchmark | benchmark-light | checksum |\n"
      "                      fibonacci | sort (default benchmark-light)\n"
      "  --isa STR           core ISA, e.g. RV32I / RV32IM (default RV32IM)\n"
      "  --bus apb|ahb       bus protocol (default ahb)\n"
      "  --mem-kb N          data memory KiB (default 16)\n"
      "\n"
      "campaign:\n"
      "  --engine NAME       event | levelized | bit-parallel\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --clusters N        clustering KN (default 8)\n"
      "  --fraction F        sampling fraction (default 0.02)\n"
      "  --min-per-cluster N / --max-per-cluster N\n"
      "  --let F / --flux F  radiation environment\n"
      "  --threads N         worker threads per process (default 1)\n"
      "  --run-cycles N      0 = golden run length (default 0)\n"
      "  --max-cycles N      golden run bound (default 4000)\n"
      "\n"
      "role (default: single-process campaign):\n"
      "  --shard K/N         run shard K (0-based) of N\n"
      "  --emit-shard-file P with --shard: write the shard file to P\n"
      "  --merge FILE...     merge shard files (positional or after --merge)\n"
      "  --workers N         spawn N worker subprocesses and merge\n"
      "  --shard-dir DIR     coordinator scratch dir (default: temp dir)\n"
      "\n"
      "output:\n"
      "  --records-csv PATH  write per-injection records as CSV\n"
      "  --summary           print cluster/class/SER summary tables\n",
      out);
}

[[nodiscard]] sim::EngineKind parse_engine(const std::string& name) {
  if (name == "event") return sim::EngineKind::kEvent;
  if (name == "levelized") return sim::EngineKind::kLevelized;
  if (name == "bit-parallel") return sim::EngineKind::kBitParallel;
  throw InvalidArgument("unknown engine '" + name + "'");
}

[[nodiscard]] soc::SocModel build_model(const Options& opt) {
  soc::SocConfig cfg;
  cfg.name = "campaign-soc";
  cfg.mem_bytes = static_cast<std::uint64_t>(opt.mem_kb) * 1024;
  cfg.mem_tech = netlist::MemTech::kSram;
  if (opt.bus == "apb") {
    cfg.bus = soc::BusProtocol::kApb;
  } else if (opt.bus == "ahb") {
    cfg.bus = soc::BusProtocol::kAhb;
  } else {
    throw InvalidArgument("unknown bus '" + opt.bus + "'");
  }
  cfg.cpu_isa = opt.isa;

  const auto core_cfg = soc::CoreConfig::from_isa(cfg.cpu_isa);
  soc::Workload workload;
  if (opt.workload == "benchmark") {
    workload = soc::benchmark_workload(core_cfg, false);
  } else if (opt.workload == "benchmark-light") {
    workload = soc::benchmark_workload(core_cfg, true);
  } else if (opt.workload == "checksum") {
    workload = soc::checksum_workload();
  } else if (opt.workload == "fibonacci") {
    workload = soc::fibonacci_workload();
  } else if (opt.workload == "sort") {
    workload = soc::sort_workload();
  } else {
    throw InvalidArgument("unknown workload '" + opt.workload + "'");
  }
  const soc::Program programs[] = {soc::assemble(workload.source)};
  return soc::build_soc(cfg, programs);
}

[[nodiscard]] fi::CampaignConfig build_config(const Options& opt) {
  fi::CampaignConfig config;
  config.engine = parse_engine(opt.engine);
  config.seed = opt.seed;
  config.clustering.num_clusters = opt.clusters;
  config.sampling.fraction = opt.fraction;
  config.sampling.min_per_cluster = opt.min_per_cluster;
  config.sampling.max_per_cluster = opt.max_per_cluster;
  config.sampling.weighting = cluster::SampleWeighting::kMixed;
  config.environment.let = opt.let;
  config.environment.flux = opt.flux;
  config.threads = opt.threads;
  config.run_cycles = opt.run_cycles;
  config.max_cycles = opt.max_cycles;
  return config;
}

/// Round-trip-exact double formatting (std::to_string's fixed six decimals
/// would corrupt values like 1e-7 on their way to a worker, and the workers
/// would then compute a different config digest than the coordinator).
[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The campaign-defining flags, re-serialized for worker subprocesses: a
/// worker must reconstruct the exact same model and config as the
/// coordinator (role/output flags are per-process and excluded).
[[nodiscard]] std::vector<std::string> campaign_args(const Options& opt) {
  return {
      "--workload", opt.workload,
      "--isa", opt.isa,
      "--bus", opt.bus,
      "--mem-kb", std::to_string(opt.mem_kb),
      "--engine", opt.engine,
      "--seed", std::to_string(opt.seed),
      "--clusters", std::to_string(opt.clusters),
      "--fraction", fmt_double(opt.fraction),
      "--min-per-cluster", std::to_string(opt.min_per_cluster),
      "--max-per-cluster", std::to_string(opt.max_per_cluster),
      "--let", fmt_double(opt.let),
      "--flux", fmt_double(opt.flux),
      "--threads", std::to_string(opt.threads),
      "--run-cycles", std::to_string(opt.run_cycles),
      "--max-cycles", std::to_string(opt.max_cycles),
  };
}

void write_records_csv(const std::string& path,
                       const std::vector<fi::InjectionRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot open '" + path + "' for writing");
  std::fputs(
      "index,kind,cell,word,bit,time_ps,set_width_ps,cluster,module_class,"
      "soft_error,first_mismatch_cycle\n",
      f);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const fi::InjectionRecord& r = records[i];
    const auto& e = r.event;
    std::fprintf(
        f, "%zu,%s,%u,%u,%u,%llu,%u,%d,%s,%d,%zu\n", i,
        std::string(radiation::fault_kind_name(e.target.kind)).c_str(),
        e.target.cell.index(), e.target.word, e.target.bit,
        static_cast<unsigned long long>(e.time_ps), e.set_width_ps, r.cluster,
        std::string(netlist::module_class_name(r.module_class)).c_str(),
        r.soft_error ? 1 : 0, r.first_mismatch_cycle);
  }
  std::fclose(f);
}

void print_summary(const fi::CampaignResult& result) {
  std::size_t errors = 0;
  for (const auto& r : result.records) errors += r.soft_error ? 1 : 0;
  std::printf("golden run: %d cycles @ %llu ps/cycle\n", result.golden_cycles,
              static_cast<unsigned long long>(result.clock_period_ps));
  std::printf("injections: %zu (%zu soft errors)\n", result.records.size(),
              errors);
  std::printf("cluster  cells(w)  samples  errors  SER\n");
  for (const auto& c : result.clusters) {
    std::printf("%7d  %8zu  %7zu  %6zu  %.4f%%\n", c.cluster, c.num_cells,
                c.samples, c.errors, c.ser_percent);
  }
  std::printf("chip SER (Eq. 2): %.4f%%\n", result.chip_ser_percent);
  std::printf("SET xsect %.3e cm^2, SEU xsect %.3e cm^2\n",
              result.set_xsect_cm2, result.seu_xsect_cm2);
  std::printf("simulation: %.2fs\n", result.simulation_seconds);
}

void emit_result(const Options& opt, const fi::CampaignResult& result) {
  if (!opt.records_csv.empty()) write_records_csv(opt.records_csv, result.records);
  if (opt.summary) print_summary(result);
  if (opt.records_csv.empty() && !opt.summary) {
    std::printf("%zu injections, chip SER %.4f%%\n", result.records.size(),
                result.chip_ser_percent);
  }
}

[[nodiscard]] Options parse_options(int argc, char** argv) {
  Options opt;
  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw InvalidArgument(std::string(argv[i]) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--workload") {
      opt.workload = need_value(i);
    } else if (arg == "--isa") {
      opt.isa = need_value(i);
    } else if (arg == "--bus") {
      opt.bus = need_value(i);
    } else if (arg == "--mem-kb") {
      opt.mem_kb = std::stoi(need_value(i));
    } else if (arg == "--engine") {
      opt.engine = need_value(i);
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value(i));
    } else if (arg == "--clusters") {
      opt.clusters = std::stoi(need_value(i));
    } else if (arg == "--fraction") {
      opt.fraction = std::stod(need_value(i));
    } else if (arg == "--min-per-cluster") {
      opt.min_per_cluster = std::stoi(need_value(i));
    } else if (arg == "--max-per-cluster") {
      opt.max_per_cluster = std::stoi(need_value(i));
    } else if (arg == "--let") {
      opt.let = std::stod(need_value(i));
    } else if (arg == "--flux") {
      opt.flux = std::stod(need_value(i));
    } else if (arg == "--threads") {
      opt.threads = std::stoi(need_value(i));
    } else if (arg == "--run-cycles") {
      opt.run_cycles = std::stoi(need_value(i));
    } else if (arg == "--max-cycles") {
      opt.max_cycles = std::stoi(need_value(i));
    } else if (arg == "--shard") {
      const std::string spec = need_value(i);
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        throw InvalidArgument("--shard expects K/N, got '" + spec + "'");
      }
      opt.shard_index = std::stoi(spec.substr(0, slash));
      opt.shard_count = std::stoi(spec.substr(slash + 1));
    } else if (arg == "--emit-shard-file") {
      opt.emit_shard_file = need_value(i);
    } else if (arg == "--merge") {
      opt.merge = true;
    } else if (arg == "--workers") {
      opt.workers = std::stoi(need_value(i));
    } else if (arg == "--shard-dir") {
      opt.shard_dir = need_value(i);
    } else if (arg == "--records-csv") {
      opt.records_csv = need_value(i);
    } else if (arg == "--summary") {
      opt.summary = true;
    } else if (!arg.empty() && arg[0] != '-') {
      opt.merge_inputs.push_back(arg);  // positional: shard files to merge
    } else {
      throw InvalidArgument("unknown option '" + arg + "'");
    }
  }
  if (opt.merge && opt.merge_inputs.empty()) {
    throw InvalidArgument("--merge requires shard files");
  }
  if (!opt.merge_inputs.empty() && !opt.merge) {
    throw InvalidArgument("positional arguments are only valid with --merge");
  }
  if (!opt.emit_shard_file.empty() && opt.shard_count <= 0) {
    throw InvalidArgument("--emit-shard-file requires --shard K/N");
  }
  // One role per invocation: conflicting role flags are an error, not a
  // precedence surprise, and output flags that a role would ignore are too.
  const int roles = (opt.shard_count > 0 ? 1 : 0) + (opt.merge ? 1 : 0) +
                    (opt.workers > 0 ? 1 : 0);
  if (roles > 1) {
    throw InvalidArgument(
        "--shard, --merge, and --workers are mutually exclusive");
  }
  if (opt.shard_count > 0 && (!opt.records_csv.empty() || opt.summary)) {
    throw InvalidArgument(
        "--records-csv/--summary apply to full results; a --shard run only "
        "emits its shard file (merge it to get records)");
  }
  return opt;
}

int run_shard_role(const Options& opt) {
  const soc::SocModel model = build_model(opt);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::ShardSpec spec{opt.shard_index, opt.shard_count};
  const fi::ShardRunResult run = fi::run_campaign_shard(model, config, db, spec);

  fi::ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = static_cast<std::uint32_t>(spec.index);
  meta.shard_count = static_cast<std::uint32_t>(spec.count);
  meta.total_injections = run.total_injections;
  meta.config_digest = fi::campaign_config_digest(model, config);
  meta.num_records = run.records.size();
  fi::write_shard_file(opt.emit_shard_file, meta, run.records);
  std::fprintf(stderr, "shard %d/%d: %zu records -> %s\n", spec.index,
               spec.count, run.records.size(), opt.emit_shard_file.c_str());
  return 0;
}

int run_merge_role(const Options& opt, const std::vector<std::string>& files) {
  const soc::SocModel model = build_model(opt);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult result =
      fi::merge_shard_files(model, config, db, files);
  emit_result(opt, result);
  return 0;
}

int run_coordinator_role(const Options& opt, const std::string& self) {
  namespace fs = std::filesystem;
  const bool scratch = opt.shard_dir.empty();
  const fs::path dir =
      scratch ? fs::temp_directory_path() /
                    ("ssresf_shards_" + std::to_string(SSRESF_GETPID()))
              : fs::path(opt.shard_dir);
  fs::create_directories(dir);
  // The scratch directory must not outlive the run, worker failures and
  // merge errors included.
  struct Cleanup {
    const fs::path* dir = nullptr;
    ~Cleanup() {
      if (dir != nullptr) {
        std::error_code ignored;
        fs::remove_all(*dir, ignored);
      }
    }
  } cleanup{scratch ? &dir : nullptr};

  std::vector<std::string> files;
  std::vector<util::Subprocess> children;
  children.reserve(static_cast<std::size_t>(opt.workers));
  for (int k = 0; k < opt.workers; ++k) {
    const std::string file =
        (dir / ("shard_" + std::to_string(k) + ".ssfs")).string();
    files.push_back(file);
    std::vector<std::string> argv = {self};
    const std::vector<std::string> campaign = campaign_args(opt);
    argv.insert(argv.end(), campaign.begin(), campaign.end());
    argv.push_back("--shard");
    argv.push_back(std::to_string(k) + "/" + std::to_string(opt.workers));
    argv.push_back("--emit-shard-file");
    argv.push_back(file);
    children.emplace_back(std::move(argv));
  }
  int failures = 0;
  for (int k = 0; k < opt.workers; ++k) {
    const int code = children[static_cast<std::size_t>(k)].wait();
    if (code != 0) {
      std::fprintf(stderr, "worker %d exited with code %d\n", k, code);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  return run_merge_role(opt, files);
}

int run_single_role(const Options& opt) {
  const soc::SocModel model = build_model(opt);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::CampaignResult result = fi::run_campaign(model, config, db);
  emit_result(opt, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    if (!opt.emit_shard_file.empty()) return run_shard_role(opt);
    if (opt.merge) return run_merge_role(opt, opt.merge_inputs);
    if (opt.workers > 0) return run_coordinator_role(opt, argv[0]);
    if (opt.shard_count > 0) {
      throw InvalidArgument("--shard requires --emit-shard-file");
    }
    return run_single_role(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ssresf_campaign: %s\n", e.what());
    return 2;
  }
}
