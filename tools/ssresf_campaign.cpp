// Distributed fault-injection campaign driver.
//
// One binary, six roles:
//   (default)                     single-process campaign (fi::run_campaign)
//   --shard K/N --emit-shard-file run shard K of N, write its records
//   --merge FILE...               merge shard files into the full result
//   --workers N                   coordinator: spawn N local worker
//                                 subprocesses of this binary, then merge
//                                 (--transport files|socket picks the path)
//   --serve PORT                  socket coordinator: serve the campaign to
//                                 any worker that connects (other hosts too)
//   --connect HOST:PORT           socket worker: pull work from a coordinator
//
// All roles derive the identical plan from (model flags, campaign flags) —
// socket workers receive them over the wire, digest-checked — so the merged
// records of any N-way run are byte-identical to the single-process run for
// any worker count and any worker kill/reconnect schedule. The records CSV
// is diffable across roles, which is exactly what the CI
// distributed-equivalence jobs do.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#ifdef _WIN32
#include <process.h>
#define SSRESF_GETPID _getpid
#else
#include <unistd.h>
#define SSRESF_GETPID ::getpid
#endif

#include "fi/golden_bundle.h"
#include "fi/record_store.h"
#include "fi/sensitivity.h"
#include "fi/shard.h"
#include "net/coordinator.h"
#include "net/worker.h"
#include "util/error.h"
#include "util/subprocess.h"
#include "util/timer.h"

using namespace ssresf;

namespace {

struct Options {
  // --- model + campaign (the record-affecting flags, see net::CampaignSpec) ---
  net::CampaignSpec spec;
  int threads = 1;  // per-process execution knob; never affects records
  int lanes = 64;   // packed-engine lane width (64 | 256); never affects records

  // --- role ------------------------------------------------------------------
  int shard_index = -1;
  int shard_count = 0;
  std::string emit_shard_file;
  std::string golden_bundle;  // with --shard: skip golden work via this file
  bool merge = false;
  int workers = 0;
  std::string transport = "files";  // with --workers: files | socket
  int serve_port = -1;
  std::string connect;  // host:port
  std::string shard_dir;
  std::vector<std::string> merge_inputs;

  // --- socket transport knobs -------------------------------------------------
  double worker_timeout = 120.0;
  std::uint64_t chunk = 0;  // injections per work item; 0 = auto
  std::string secret;       // shared handshake secret ("" = open fleet)
  double connect_timeout = 10.0;
  double frame_deadline = 30.0;
  std::string journal;  // coordinator dispatch journal (.ssjl)
  std::string chaos;    // worker fault schedule "SEED:COUNT[:FIRST[:SPAN]]"

  // --- self-healing fleet knobs ----------------------------------------------
  std::uint64_t worker_id = 0;    // stable identity; election tiebreak
  double election_timeout = 0.0;  // 0 = elections off
  int peer_port = 0;              // worker peer-query listener (0 = ephemeral)
  std::string advertise_addr;     // host peers dial for that listener
  std::string promote_journal;    // where a promoted worker persists its replica
  std::string promoted_csv;       // where a promoted worker writes the final CSV
  std::uint64_t epoch = 0;        // election epoch (serve AND connect roles)
  std::uint64_t die_after_frames = 0;  // coordinator chaos: SIGKILL stand-in

  // --- output ----------------------------------------------------------------
  std::string records_csv;
  std::string stats_csv;     // cluster/class/chip sensitivity statistics CSV
  std::string records_file;  // full records in --record-format's codec
  int record_format = 1;     // 1 = flat shard codec, 2 = columnar store
  bool summary = false;
};

void usage(std::FILE* out) {
  std::fputs(
      "usage: ssresf_campaign [options]\n"
      "\n"
      "model:\n"
      "  --workload NAME     benchmark | benchmark-light | checksum |\n"
      "                      fibonacci | sort (default benchmark-light)\n"
      "  --isa STR           core ISA, e.g. RV32I / RV32IM (default RV32IM)\n"
      "  --bus apb|ahb       bus protocol (default ahb)\n"
      "  --mem-kb N          data memory KiB (default 16)\n"
      "\n"
      "campaign:\n"
      "  --engine NAME       event | levelized | bit-parallel\n"
      "  --seed N            campaign seed (default 1)\n"
      "  --clusters N        clustering KN (default 8)\n"
      "  --fraction F        sampling fraction (default 0.02)\n"
      "  --min-per-cluster N / --max-per-cluster N\n"
      "  --let F / --flux F  radiation environment\n"
      "  --threads N         worker threads per process (default 1)\n"
      "  --lanes N           bit-parallel lane width: 64 or 256 (default 64;\n"
      "                      256 uses AVX2 when available; records are\n"
      "                      byte-identical at every width)\n"
      "  --run-cycles N      0 = golden run length (default 0)\n"
      "  --max-cycles N      golden run bound (default 4000)\n"
      "\n"
      "role (default: single-process campaign):\n"
      "  --shard K/N         run shard K (0-based) of N\n"
      "  --emit-shard-file P with --shard: write the shard file to P\n"
      "  --golden-bundle P   with --shard: load shipped golden work (.ssgb)\n"
      "  --merge FILE...     merge shard files (positional or after --merge)\n"
      "  --workers N         spawn N worker subprocesses and merge\n"
      "  --transport files|socket\n"
      "                      with --workers: shard files (default) or a\n"
      "                      loopback TCP coordinator with ladder shipping\n"
      "  --serve PORT        socket coordinator; 0 picks a free port\n"
      "  --connect HOST:PORT socket worker\n"
      "  --shard-dir DIR     coordinator scratch dir (default: temp dir)\n"
      "\n"
      "socket transport:\n"
      "  --worker-timeout S  reassign a silent worker's chunk after S seconds\n"
      "                      (default 120)\n"
      "  --chunk N           injections per work item (default: plan/64)\n"
      "  --secret S          shared handshake secret; a worker with a\n"
      "                      different secret is rejected before any\n"
      "                      campaign data (default: open fleet)\n"
      "  --connect-timeout S worker connect/reconnect retry window (default\n"
      "                      10)\n"
      "  --frame-deadline S  per-frame receive deadline against stalled\n"
      "                      peers (default 30)\n"
      "  --journal PATH      coordinator dispatch journal (.ssjl); a\n"
      "                      restarted coordinator on the same journal\n"
      "                      resumes instead of redoing finished work\n"
      "  --chaos SEED:COUNT[:FIRST[:SPAN]]\n"
      "                      with --connect: seeded fault schedule at this\n"
      "                      worker's frame-send seam — COUNT faults (drop,\n"
      "                      garble, truncate, delay) at seed-derived op\n"
      "                      indices in [FIRST, FIRST+SPAN) (defaults 1, 64).\n"
      "                      Records must still merge byte-identically\n"
      "\n"
      "self-healing fleet:\n"
      "  --worker-id N       stable worker identity; the lowest id among\n"
      "                      bundle-holding survivors wins an election\n"
      "  --election-timeout S\n"
      "                      with --connect: seconds a vanished coordinator\n"
      "                      is tolerated before the workers elect a\n"
      "                      replacement from among themselves (0 = off)\n"
      "  --peer-port P       worker peer-query listener port (0 = ephemeral)\n"
      "  --advertise-addr H  host peers should dial to reach this worker's\n"
      "                      peer listener (empty = the address the\n"
      "                      coordinator saw; setting it widens the peer\n"
      "                      listener bind beyond loopback)\n"
      "  --promote-journal P where a promoted worker persists its journal\n"
      "                      replica (default: temp dir)\n"
      "  --promoted-csv P    if this worker wins an election, write the\n"
      "                      campaign's final records CSV here — the elected\n"
      "                      worker is the fleet's new exit point\n"
      "  --epoch N           election epoch: --serve binds it into the\n"
      "                      handshake MAC; --connect refuses coordinators\n"
      "                      below it (stale-primary guard)\n"
      "  --die-after-frames N\n"
      "                      with --serve: deterministic SIGKILL stand-in —\n"
      "                      drop every connection and the listener after\n"
      "                      receiving N frames, then exit (0 = never)\n"
      "\n"
      "output:\n"
      "  --records-csv PATH  write per-injection records as CSV\n"
      "  --stats-csv PATH    write the cluster/class/chip sensitivity\n"
      "                      statistics CSV (byte-identical across record\n"
      "                      formats, worker counts, and transports)\n"
      "  --records-file PATH write the full merged records to a record file\n"
      "                      in the --record-format codec\n"
      "  --record-format v1|v2\n"
      "                      record file codec (default v1): v1 is the flat\n"
      "                      shard codec, v2 the chunked columnar store.\n"
      "                      With v2 the full-result roles stream records\n"
      "                      and statistics instead of buffering the whole\n"
      "                      campaign in memory; records are identical\n"
      "  --summary           print cluster/class/SER summary tables\n",
      out);
}

[[nodiscard]] sim::EngineKind parse_engine(const std::string& name) {
  if (name == "event") return sim::EngineKind::kEvent;
  if (name == "levelized") return sim::EngineKind::kLevelized;
  if (name == "bit-parallel") return sim::EngineKind::kBitParallel;
  throw InvalidArgument("unknown engine '" + name + "'");
}

[[nodiscard]] const char* engine_flag(sim::EngineKind kind) {
  switch (kind) {
    case sim::EngineKind::kEvent:
      return "event";
    case sim::EngineKind::kLevelized:
      return "levelized";
    case sim::EngineKind::kBitParallel:
      return "bit-parallel";
  }
  return "levelized";
}

/// Round-trip-exact double formatting (std::to_string's fixed six decimals
/// would corrupt values like 1e-7 on their way to a worker, and the workers
/// would then compute a different config digest than the coordinator).
[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The campaign-defining flags, re-serialized for shard worker subprocesses:
/// a worker must reconstruct the exact same model and config as the
/// coordinator (role/output flags are per-process and excluded). Socket
/// workers need none of this — the spec travels over the wire.
[[nodiscard]] std::vector<std::string> campaign_args(const Options& opt) {
  const fi::CampaignConfig& c = opt.spec.config;
  return {
      "--workload", opt.spec.workload,
      "--isa", opt.spec.isa,
      "--bus", opt.spec.bus,
      "--mem-kb", std::to_string(opt.spec.mem_kb),
      "--engine", engine_flag(c.engine),
      "--seed", std::to_string(c.seed),
      "--clusters", std::to_string(c.clustering.num_clusters),
      "--fraction", fmt_double(c.sampling.fraction),
      "--min-per-cluster", std::to_string(c.sampling.min_per_cluster),
      "--max-per-cluster", std::to_string(c.sampling.max_per_cluster),
      "--let", fmt_double(c.environment.let),
      "--flux", fmt_double(c.environment.flux),
      "--threads", std::to_string(opt.threads),
      "--lanes", std::to_string(opt.lanes),
      "--run-cycles", std::to_string(c.run_cycles),
      "--max-cycles", std::to_string(c.max_cycles),
  };
}

[[nodiscard]] fi::CampaignConfig build_config(const Options& opt) {
  fi::CampaignConfig config = opt.spec.config;
  config.threads = opt.threads;
  config.lanes = opt.lanes;
  return config;
}

void print_summary(const fi::CampaignResult& result) {
  std::size_t errors = 0;
  for (const auto& r : result.records) errors += r.soft_error ? 1 : 0;
  std::printf("golden run: %d cycles @ %llu ps/cycle\n", result.golden_cycles,
              static_cast<unsigned long long>(result.clock_period_ps));
  std::printf("injections: %zu (%zu soft errors)\n", result.records.size(),
              errors);
  std::printf("cluster  cells(w)  samples  errors  SER\n");
  for (const auto& c : result.clusters) {
    std::printf("%7d  %8zu  %7zu  %6zu  %.4f%%\n", c.cluster, c.num_cells,
                c.samples, c.errors, c.ser_percent);
  }
  std::printf("chip SER (Eq. 2): %.4f%%\n", result.chip_ser_percent);
  std::printf("SET xsect %.3e cm^2, SEU xsect %.3e cm^2\n",
              result.set_xsect_cm2, result.seu_xsect_cm2);
  std::printf("simulation: %.2fs\n", result.simulation_seconds);
}

void print_summary(const fi::CampaignStats& stats) {
  std::printf("golden run: %d cycles @ %llu ps/cycle\n", stats.golden_cycles,
              static_cast<unsigned long long>(stats.clock_period_ps));
  std::printf("injections: %llu (%llu soft errors)\n",
              static_cast<unsigned long long>(stats.num_records),
              static_cast<unsigned long long>(stats.num_soft_errors));
  std::printf("cluster  cells(w)  samples  errors  SER\n");
  for (const auto& c : stats.clusters) {
    std::printf("%7d  %8zu  %7zu  %6zu  %.4f%%\n", c.cluster, c.num_cells,
                c.samples, c.errors, c.ser_percent);
  }
  std::printf("chip SER (Eq. 2): %.4f%%\n", stats.chip_ser_percent);
  std::printf("SET xsect %.3e cm^2, SEU xsect %.3e cm^2\n",
              stats.set_xsect_cm2, stats.seu_xsect_cm2);
  std::printf("simulation: %.2fs\n", stats.simulation_seconds);
}

void emit_result(const Options& opt, const fi::CampaignResult& result) {
  if (!opt.records_csv.empty()) {
    fi::write_records_csv(opt.records_csv, result.records);
  }
  if (!opt.stats_csv.empty()) {
    fi::write_sensitivity_csv(opt.stats_csv, result);
  }
  if (!opt.records_file.empty()) {
    // The records file carries the campaign digest, so rebuild the model the
    // same way every other role does (cheap next to the campaign itself).
    const soc::SocModel model = net::build_model(opt.spec);
    const fi::CampaignConfig config = build_config(opt);
    std::vector<fi::ShardRecord> records;
    records.reserve(result.records.size());
    for (std::size_t i = 0; i < result.records.size(); ++i) {
      records.push_back(fi::ShardRecord{i, result.records[i]});
    }
    fi::ShardFileMeta meta;
    meta.seed = config.seed;
    meta.shard_index = 0;
    meta.shard_count = 1;
    meta.total_injections = records.size();
    meta.config_digest = fi::campaign_config_digest(model, config);
    meta.num_records = records.size();
    if (opt.record_format == 2) {
      fi::write_columnar_file(opt.records_file, meta, records);
    } else {
      fi::write_shard_file(opt.records_file, meta, records);
    }
  }
  if (opt.summary) print_summary(result);
  if (opt.records_csv.empty() && opt.stats_csv.empty() &&
      opt.records_file.empty() && !opt.summary) {
    std::printf("%zu injections, chip SER %.4f%%\n", result.records.size(),
                result.chip_ser_percent);
  }
}

/// Sinks of a v2 streaming full-result run. Records flow straight into the
/// requested outputs — never into a plan-sized vector — except when a
/// records CSV is requested without a records file: the CSV needs global-
/// index order, which arrival-order streams don't guarantee, so that one
/// combination collects (exactly what the v1 path would have held anyway).
/// With a records file the CSV comes from reading the columnar store back,
/// one chunk resident at a time.
struct StreamSinks {
  explicit StreamSinks(const Options& opt) {
    std::vector<fi::RecordSink*> outs;
    if (!opt.records_file.empty()) {
      file.emplace(opt.records_file);
      outs.push_back(&*file);
    }
    if (!opt.records_csv.empty() && opt.records_file.empty()) {
      collect.emplace();
      outs.push_back(&*collect);
    }
    tee.emplace(std::move(outs));
  }
  // The tee holds pointers into this object — it must never move.
  StreamSinks(const StreamSinks&) = delete;
  StreamSinks& operator=(const StreamSinks&) = delete;

  std::optional<fi::ColumnarFileWriter> file;
  std::optional<fi::VectorSink> collect;
  std::optional<fi::TeeSink> tee;
  [[nodiscard]] fi::RecordSink& sink() { return *tee; }
};

void emit_streamed(const Options& opt, StreamSinks& sinks,
                   const fi::CampaignStats& stats) {
  if (!opt.records_csv.empty()) {
    if (sinks.collect) {
      fi::write_records_csv(opt.records_csv, sinks.collect->take_records());
    } else {
      const auto source = fi::open_record_source(opt.records_file);
      fi::write_records_csv(opt.records_csv, *source);
    }
  }
  if (!opt.stats_csv.empty()) {
    fi::write_sensitivity_csv(opt.stats_csv, stats);
  }
  if (opt.summary) print_summary(stats);
  if (opt.records_csv.empty() && opt.stats_csv.empty() &&
      opt.records_file.empty() && !opt.summary) {
    std::printf("%llu injections, chip SER %.4f%%\n",
                static_cast<unsigned long long>(stats.num_records),
                stats.chip_ser_percent);
  }
}

[[nodiscard]] Options parse_options(int argc, char** argv) {
  Options opt;
  // The CLI default differs from the library default (broader sampling).
  opt.spec.config.clustering.num_clusters = 8;
  opt.spec.config.sampling.fraction = 0.02;
  opt.spec.config.sampling.min_per_cluster = 4;
  opt.spec.config.sampling.max_per_cluster = 32;
  opt.spec.config.sampling.weighting = cluster::SampleWeighting::kMixed;
  opt.spec.config.environment.let = 37.0;
  opt.spec.config.environment.flux = 5e8;
  opt.spec.config.engine = sim::EngineKind::kLevelized;
  opt.spec.config.seed = 1;
  opt.spec.config.run_cycles = 0;
  opt.spec.config.max_cycles = 4000;

  const auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) {
      throw InvalidArgument(std::string(argv[i]) + " requires a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (arg == "--workload") {
      opt.spec.workload = need_value(i);
    } else if (arg == "--isa") {
      opt.spec.isa = need_value(i);
    } else if (arg == "--bus") {
      opt.spec.bus = need_value(i);
    } else if (arg == "--mem-kb") {
      opt.spec.mem_kb = std::stoi(need_value(i));
    } else if (arg == "--engine") {
      opt.spec.config.engine = parse_engine(need_value(i));
    } else if (arg == "--seed") {
      opt.spec.config.seed = std::stoull(need_value(i));
    } else if (arg == "--clusters") {
      opt.spec.config.clustering.num_clusters = std::stoi(need_value(i));
    } else if (arg == "--fraction") {
      opt.spec.config.sampling.fraction = std::stod(need_value(i));
    } else if (arg == "--min-per-cluster") {
      opt.spec.config.sampling.min_per_cluster = std::stoi(need_value(i));
    } else if (arg == "--max-per-cluster") {
      opt.spec.config.sampling.max_per_cluster = std::stoi(need_value(i));
    } else if (arg == "--let") {
      opt.spec.config.environment.let = std::stod(need_value(i));
    } else if (arg == "--flux") {
      opt.spec.config.environment.flux = std::stod(need_value(i));
    } else if (arg == "--threads") {
      opt.threads = std::stoi(need_value(i));
    } else if (arg == "--lanes") {
      opt.lanes = std::stoi(need_value(i));
    } else if (arg == "--run-cycles") {
      opt.spec.config.run_cycles = std::stoi(need_value(i));
    } else if (arg == "--max-cycles") {
      opt.spec.config.max_cycles = std::stoi(need_value(i));
    } else if (arg == "--shard") {
      const std::string spec = need_value(i);
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        throw InvalidArgument("--shard expects K/N, got '" + spec + "'");
      }
      opt.shard_index = std::stoi(spec.substr(0, slash));
      opt.shard_count = std::stoi(spec.substr(slash + 1));
    } else if (arg == "--emit-shard-file") {
      opt.emit_shard_file = need_value(i);
    } else if (arg == "--golden-bundle") {
      opt.golden_bundle = need_value(i);
    } else if (arg == "--merge") {
      opt.merge = true;
    } else if (arg == "--workers") {
      opt.workers = std::stoi(need_value(i));
    } else if (arg == "--transport") {
      opt.transport = need_value(i);
      if (opt.transport != "files" && opt.transport != "socket") {
        throw InvalidArgument("--transport expects files|socket, got '" +
                              opt.transport + "'");
      }
    } else if (arg == "--serve") {
      opt.serve_port = std::stoi(need_value(i));
      if (opt.serve_port < 0 || opt.serve_port > 65535) {
        throw InvalidArgument("--serve expects a port in [0, 65535]");
      }
    } else if (arg == "--connect") {
      opt.connect = need_value(i);
    } else if (arg == "--worker-timeout") {
      opt.worker_timeout = std::stod(need_value(i));
      if (opt.worker_timeout <= 0) {
        throw InvalidArgument("--worker-timeout must be positive, got " +
                              std::to_string(opt.worker_timeout));
      }
    } else if (arg == "--chunk") {
      opt.chunk = std::stoull(need_value(i));
    } else if (arg == "--secret") {
      opt.secret = need_value(i);
    } else if (arg == "--connect-timeout") {
      opt.connect_timeout = std::stod(need_value(i));
      if (opt.connect_timeout <= 0) {
        throw InvalidArgument("--connect-timeout must be positive, got " +
                              std::to_string(opt.connect_timeout));
      }
    } else if (arg == "--frame-deadline") {
      opt.frame_deadline = std::stod(need_value(i));
      if (opt.frame_deadline <= 0) {
        throw InvalidArgument("--frame-deadline must be positive, got " +
                              std::to_string(opt.frame_deadline));
      }
    } else if (arg == "--journal") {
      opt.journal = need_value(i);
    } else if (arg == "--chaos") {
      opt.chaos = need_value(i);
    } else if (arg == "--worker-id") {
      opt.worker_id = std::stoull(need_value(i));
      if (opt.worker_id == 0) {
        throw InvalidArgument("--worker-id must be nonzero (0 = auto)");
      }
    } else if (arg == "--election-timeout") {
      opt.election_timeout = std::stod(need_value(i));
      if (opt.election_timeout < 0) {
        throw InvalidArgument("--election-timeout must be >= 0, got " +
                              std::to_string(opt.election_timeout));
      }
    } else if (arg == "--peer-port") {
      opt.peer_port = std::stoi(need_value(i));
      if (opt.peer_port < 0 || opt.peer_port > 65535) {
        throw InvalidArgument("--peer-port expects a port in [0, 65535]");
      }
    } else if (arg == "--advertise-addr") {
      opt.advertise_addr = need_value(i);
    } else if (arg == "--promote-journal") {
      opt.promote_journal = need_value(i);
    } else if (arg == "--promoted-csv") {
      opt.promoted_csv = need_value(i);
    } else if (arg == "--epoch") {
      opt.epoch = std::stoull(need_value(i));
    } else if (arg == "--die-after-frames") {
      opt.die_after_frames = std::stoull(need_value(i));
    } else if (arg == "--shard-dir") {
      opt.shard_dir = need_value(i);
    } else if (arg == "--records-csv") {
      opt.records_csv = need_value(i);
    } else if (arg == "--stats-csv") {
      opt.stats_csv = need_value(i);
    } else if (arg == "--records-file") {
      opt.records_file = need_value(i);
    } else if (arg == "--record-format") {
      const std::string format = need_value(i);
      if (format == "v1") {
        opt.record_format = 1;
      } else if (format == "v2") {
        opt.record_format = 2;
      } else {
        throw InvalidArgument("--record-format expects v1|v2, got '" + format +
                              "'");
      }
    } else if (arg == "--summary") {
      opt.summary = true;
    } else if (!arg.empty() && arg[0] != '-') {
      opt.merge_inputs.push_back(arg);  // positional: shard files to merge
    } else {
      throw InvalidArgument("unknown option '" + arg + "'");
    }
  }
  if (opt.merge && opt.merge_inputs.empty()) {
    throw InvalidArgument("--merge requires shard files");
  }
  if (!opt.merge_inputs.empty() && !opt.merge) {
    throw InvalidArgument("positional arguments are only valid with --merge");
  }
  if (!opt.emit_shard_file.empty() && opt.shard_count <= 0) {
    throw InvalidArgument("--emit-shard-file requires --shard K/N");
  }
  if (!opt.golden_bundle.empty() && opt.shard_count <= 0) {
    throw InvalidArgument("--golden-bundle requires --shard K/N");
  }
  // One role per invocation: conflicting role flags are an error, not a
  // precedence surprise, and output flags that a role would ignore are too.
  const int roles = (opt.shard_count > 0 ? 1 : 0) + (opt.merge ? 1 : 0) +
                    (opt.workers > 0 ? 1 : 0) + (opt.serve_port >= 0 ? 1 : 0) +
                    (!opt.connect.empty() ? 1 : 0);
  if (roles > 1) {
    throw InvalidArgument(
        "--shard, --merge, --workers, --serve, and --connect are mutually "
        "exclusive");
  }
  const bool wants_full_output = !opt.records_csv.empty() ||
                                 !opt.stats_csv.empty() ||
                                 !opt.records_file.empty() || opt.summary;
  if (opt.shard_count > 0 && wants_full_output) {
    throw InvalidArgument(
        "--records-csv/--stats-csv/--records-file/--summary apply to full "
        "results; a --shard run only emits its shard file (merge it to get "
        "records)");
  }
  if (!opt.connect.empty() && wants_full_output) {
    throw InvalidArgument(
        "--records-csv/--stats-csv/--records-file/--summary apply to full "
        "results; a --connect worker streams its records to the coordinator");
  }
  return opt;
}

int run_shard_role(const Options& opt) {
  const soc::SocModel model = net::build_model(opt.spec);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  const fi::ShardSpec spec{opt.shard_index, opt.shard_count};
  // A shipped golden bundle spares this worker both golden passes; records
  // are byte-identical either way.
  std::optional<fi::GoldenBundle> bundle;
  if (!opt.golden_bundle.empty()) {
    bundle = fi::read_golden_bundle_file(opt.golden_bundle, model, config);
  }
  if (opt.record_format == 2) {
    // Streaming shard run: records flow into the columnar store as they
    // come; the deferred writer picks up the shard metadata via begin().
    fi::ColumnarFileWriter writer(opt.emit_shard_file);
    (void)fi::run_campaign_shard(model, config, db, spec, writer,
                                 bundle ? &*bundle : nullptr);
    std::fprintf(stderr, "shard %d/%d: %llu records -> %s\n", spec.index,
                 spec.count,
                 static_cast<unsigned long long>(writer.records_written()),
                 opt.emit_shard_file.c_str());
    return 0;
  }
  const fi::ShardRunResult run = fi::run_campaign_shard(
      model, config, db, spec, bundle ? &*bundle : nullptr);

  fi::ShardFileMeta meta;
  meta.seed = config.seed;
  meta.shard_index = static_cast<std::uint32_t>(spec.index);
  meta.shard_count = static_cast<std::uint32_t>(spec.count);
  meta.total_injections = run.total_injections;
  meta.config_digest = fi::campaign_config_digest(model, config);
  meta.num_records = run.records.size();
  fi::write_shard_file(opt.emit_shard_file, meta, run.records);
  std::fprintf(stderr, "shard %d/%d: %zu records -> %s\n", spec.index,
               spec.count, run.records.size(), opt.emit_shard_file.c_str());
  return 0;
}

int run_merge_role(const Options& opt, const std::vector<std::string>& files) {
  const soc::SocModel model = net::build_model(opt.spec);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  if (opt.record_format == 2) {
    // K-way streaming merge: any mix of v1/v2 inputs, one in-flight batch
    // per input file, statistics from the streaming aggregator.
    StreamSinks sinks(opt);
    const fi::CampaignStats stats =
        fi::merge_record_files(model, config, db, files, sinks.sink());
    emit_streamed(opt, sinks, stats);
    return 0;
  }
  const fi::CampaignResult result =
      fi::merge_shard_files(model, config, db, files);
  emit_result(opt, result);
  return 0;
}

/// Coordinator scratch dir helper: a user-supplied dir is kept, a temp one
/// is removed on every exit path (worker failures and merge errors included).
struct ScratchDir {
  std::filesystem::path dir;
  bool remove = false;
  explicit ScratchDir(const std::string& requested) {
    remove = requested.empty();
    dir = remove ? std::filesystem::temp_directory_path() /
                       ("ssresf_shards_" + std::to_string(SSRESF_GETPID()))
                 : std::filesystem::path(requested);
    std::filesystem::create_directories(dir);
  }
  ~ScratchDir() {
    if (remove) {
      std::error_code ignored;
      std::filesystem::remove_all(dir, ignored);
    }
  }
};

int run_files_coordinator_role(const Options& opt, const std::string& self) {
  const ScratchDir scratch(opt.shard_dir);
  const soc::SocModel model = net::build_model(opt.spec);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();

  // One golden pass for the whole fleet: prepare here, write the bundle, and
  // every shard worker loads it instead of re-deriving golden run + replay +
  // ladder (the redundancy PR 3 paid per worker).
  fi::detail::CampaignPrep prep =
      fi::detail::prepare_campaign(model, config, db, /*for_execution=*/true);
  const std::string bundle_path = (scratch.dir / "golden.ssgb").string();
  fi::write_golden_bundle_file(bundle_path, model, config,
                               fi::extract_golden_bundle(model, config, prep));

  std::vector<std::string> files;
  std::vector<util::Subprocess> children;
  children.reserve(static_cast<std::size_t>(opt.workers));
  for (int k = 0; k < opt.workers; ++k) {
    const std::string file =
        (scratch.dir / ("shard_" + std::to_string(k) + ".ssfs")).string();
    files.push_back(file);
    std::vector<std::string> argv = {self};
    const std::vector<std::string> campaign = campaign_args(opt);
    argv.insert(argv.end(), campaign.begin(), campaign.end());
    argv.push_back("--shard");
    argv.push_back(std::to_string(k) + "/" + std::to_string(opt.workers));
    argv.push_back("--emit-shard-file");
    argv.push_back(file);
    argv.push_back("--golden-bundle");
    argv.push_back(bundle_path);
    argv.push_back("--record-format");
    argv.push_back(opt.record_format == 2 ? "v2" : "v1");
    children.emplace_back(std::move(argv));
  }
  int failures = 0;
  for (int k = 0; k < opt.workers; ++k) {
    const int code = children[static_cast<std::size_t>(k)].wait();
    if (code != 0) {
      std::fprintf(stderr, "worker %d exited with code %d\n", k, code);
      ++failures;
    }
  }
  if (failures > 0) return 1;
  if (opt.record_format == 2) {
    // Stream the columnar shard files through the K-way merge, reusing the
    // prep this coordinator already paid for (one golden pass total).
    util::Timer merge_timer;
    StreamSinks sinks(opt);
    fi::CampaignAggregator aggregator(model, config, db, prep);
    fi::TeeSink tee({&aggregator, &sinks.sink()});
    fi::detail::stream_merged_records(model, config, prep, files, tee);
    tee.flush();
    fi::CampaignStats stats = aggregator.finalize();
    stats.simulation_seconds = merge_timer.seconds();
    emit_streamed(opt, sinks, stats);
    return 0;
  }
  const fi::CampaignResult result =
      fi::merge_shard_files(model, config, db, std::move(prep), files);
  emit_result(opt, result);
  return 0;
}

int run_socket_coordinator_role(const Options& opt, const std::string& self) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  net::CoordinatorOptions copts;
  copts.port = 0;  // ephemeral loopback port, read back below
  copts.loopback_only = true;
  copts.chunk_injections = opt.chunk;
  copts.worker_timeout_seconds = opt.worker_timeout;
  copts.frame_deadline_seconds = opt.frame_deadline;
  copts.secret = opt.secret;
  copts.journal_path = opt.journal;
  copts.verbose = true;
  net::Coordinator coordinator(opt.spec, db, copts);

  std::vector<util::Subprocess> children;
  children.reserve(static_cast<std::size_t>(opt.workers));
  for (int k = 0; k < opt.workers; ++k) {
    std::vector<std::string> argv = {
        self, "--connect", "127.0.0.1:" + std::to_string(coordinator.port()),
        "--threads", std::to_string(opt.threads),
        "--lanes", std::to_string(opt.lanes)};
    if (!opt.secret.empty()) {
      argv.insert(argv.end(), {"--secret", opt.secret});
    }
    children.emplace_back(std::move(argv));
  }
  // The campaign is complete and verified once run() returns; a worker that
  // died (or was killed) along the way already had its work reassigned, so a
  // non-zero child is a warning, not a failure.
  const auto reap_children = [&children, &opt] {
    for (int k = 0; k < opt.workers; ++k) {
      const int code = children[static_cast<std::size_t>(k)].wait();
      if (code != 0) {
        std::fprintf(stderr, "note: socket worker %d exited with code %d\n", k,
                     code);
      }
    }
  };
  if (opt.record_format == 2) {
    // Streaming collection: the coordinator keeps per-injection bookkeeping
    // only; accepted batches flow straight into the requested outputs.
    StreamSinks sinks(opt);
    const fi::CampaignStats stats = coordinator.run(sinks.sink());
    reap_children();
    emit_streamed(opt, sinks, stats);
    return 0;
  }
  const fi::CampaignResult result = coordinator.run();
  reap_children();
  emit_result(opt, result);
  return 0;
}

int run_serve_role(const Options& opt) {
  const auto db = radiation::SoftErrorDatabase::default_database();
  net::CoordinatorOptions copts;
  copts.port = static_cast<std::uint16_t>(opt.serve_port);
  copts.loopback_only = false;
  copts.chunk_injections = opt.chunk;
  copts.worker_timeout_seconds = opt.worker_timeout;
  copts.frame_deadline_seconds = opt.frame_deadline;
  copts.secret = opt.secret;
  copts.journal_path = opt.journal;
  copts.epoch = opt.epoch;
  copts.verbose = true;
  net::CoordinatorDeathSchedule death(opt.die_after_frames);
  if (opt.die_after_frames > 0) copts.death = &death;
  net::Coordinator coordinator(opt.spec, db, copts);
  std::fprintf(stderr, "serving campaign on port %u\n",
               static_cast<unsigned>(coordinator.port()));
  try {
    if (opt.record_format == 2) {
      StreamSinks sinks(opt);
      const fi::CampaignStats stats = coordinator.run(sinks.sink());
      emit_streamed(opt, sinks, stats);
    } else {
      const fi::CampaignResult result = coordinator.run();
      emit_result(opt, result);
    }
  } catch (const net::CoordinatorKilled& e) {
    // The scheduled death is the point of the exercise (CI chaos variants):
    // exit quietly and let the fleet heal itself.
    std::fprintf(stderr, "%s\n", e.what());
  }
  return 0;
}

/// "SEED:COUNT[:FIRST[:SPAN]]" -> a seeded ChaosSchedule. Kept in the CLI so
/// CI can run real multi-process campaigns with chaotic workers and byte-diff
/// the merged CSV against a clean run.
net::ChaosSchedule parse_chaos_schedule(const std::string& spec) {
  std::vector<std::uint64_t> fields;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    const std::string field =
        spec.substr(pos, colon == std::string::npos ? colon : colon - pos);
    try {
      std::size_t used = 0;
      fields.push_back(std::stoull(field, &used));
      if (used != field.size()) throw std::invalid_argument(field);
    } catch (const std::exception&) {
      throw InvalidArgument("--chaos expects SEED:COUNT[:FIRST[:SPAN]], got '" +
                            spec + "'");
    }
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  if (fields.size() < 2 || fields.size() > 4) {
    throw InvalidArgument("--chaos expects SEED:COUNT[:FIRST[:SPAN]], got '" +
                          spec + "'");
  }
  const std::uint64_t first = fields.size() > 2 ? fields[2] : 1;
  const std::uint64_t span = fields.size() > 3 ? fields[3] : 64;
  return net::ChaosSchedule::from_seed(fields[0],
                                       static_cast<std::size_t>(fields[1]),
                                       first, span);
}

int run_connect_role(const Options& opt) {
  const std::size_t colon = opt.connect.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == opt.connect.size()) {
    throw InvalidArgument("--connect expects HOST:PORT, got '" + opt.connect +
                          "'");
  }
  const int port = std::stoi(opt.connect.substr(colon + 1));
  if (port < 1 || port > 65535) {
    throw InvalidArgument("--connect port must be in [1, 65535], got " +
                          std::to_string(port));
  }
  const auto db = radiation::SoftErrorDatabase::default_database();
  net::WorkerOptions wopts;
  wopts.host = opt.connect.substr(0, colon);
  wopts.port = static_cast<std::uint16_t>(port);
  wopts.threads = opt.threads;
  wopts.lanes = opt.lanes;
  wopts.secret = opt.secret;
  wopts.connect_timeout_seconds = opt.connect_timeout;
  wopts.worker_id = opt.worker_id;
  wopts.election_timeout_seconds = opt.election_timeout;
  wopts.peer_port = static_cast<std::uint16_t>(opt.peer_port);
  wopts.advertise_host = opt.advertise_addr;
  wopts.promote_journal_path = opt.promote_journal;
  wopts.initial_epoch = opt.epoch;
  wopts.verbose = true;
  net::ChaosSchedule chaos;
  if (!opt.chaos.empty()) {
    chaos = parse_chaos_schedule(opt.chaos);
    wopts.chaos = &chaos;
  }
  net::Worker worker(db, wopts);
  const std::uint64_t produced = worker.run();
  std::fprintf(stderr, "worker done: %llu records\n",
               static_cast<unsigned long long>(produced));
  if (worker.promoted() && worker.promoted_result().has_value()) {
    // This worker won an election and finished the campaign as its
    // coordinator — its process holds the merged result the dead primary
    // would have emitted.
    if (!opt.promoted_csv.empty()) {
      fi::write_records_csv(opt.promoted_csv, worker.promoted_result()->records);
      std::fprintf(stderr, "promoted: merged records -> %s\n",
                   opt.promoted_csv.c_str());
    } else {
      std::fprintf(stderr, "promoted: campaign finished under this worker\n");
    }
  }
  return 0;
}

int run_single_role(const Options& opt) {
  const soc::SocModel model = net::build_model(opt.spec);
  const fi::CampaignConfig config = build_config(opt);
  const auto db = radiation::SoftErrorDatabase::default_database();
  if (opt.record_format == 2) {
    StreamSinks sinks(opt);
    const fi::CampaignStats stats =
        fi::run_campaign(model, config, db, sinks.sink());
    emit_streamed(opt, sinks, stats);
    return 0;
  }
  const fi::CampaignResult result = fi::run_campaign(model, config, db);
  emit_result(opt, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse_options(argc, argv);
    if (!opt.emit_shard_file.empty()) return run_shard_role(opt);
    if (opt.merge) return run_merge_role(opt, opt.merge_inputs);
    if (opt.workers > 0) {
      return opt.transport == "socket"
                 ? run_socket_coordinator_role(opt, argv[0])
                 : run_files_coordinator_role(opt, argv[0]);
    }
    if (opt.serve_port >= 0) return run_serve_role(opt);
    if (!opt.connect.empty()) return run_connect_role(opt);
    if (opt.shard_count > 0) {
      throw InvalidArgument("--shard requires --emit-shard-file");
    }
    return run_single_role(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ssresf_campaign: %s\n", e.what());
    return 2;
  }
}
